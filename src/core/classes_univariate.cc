// The six univariate numeric insight classes: Dispersion, Skew, Heavy Tails,
// Outliers (§2.2 insights 1-4), Multimodality (§2.2 "additional insights"),
// and Missing Values.

#include <cmath>
#include <memory>

#include "core/classes_common.h"
#include "core/insight_classes.h"
#include "stats/moments.h"
#include "stats/multimodality.h"
#include "stats/outliers.h"
#include "stats/quantiles.h"
#include "util/string_util.h"

namespace foresight {

namespace {

using internal_classes::ExpectMetric;
using internal_classes::ExpectNumeric;
using internal_classes::SampledValues;
using internal_classes::UnaryCandidates;
using internal_classes::ValidValues;

/// Shared skeleton for single-numeric-column, moments-based classes.
/// Moments are maintained exactly and single-pass in the sketch bundle (§3:
/// "skewness and kurtosis can both be computed ... by maintaining and
/// combining a few running sums"), so the sketch path reads the profile's
/// RunningMoments and never touches raw data.
class MomentsBasedClass : public InsightClass {
 public:
  size_t arity() const override { return 1; }

  std::vector<AttributeTuple> EnumerateCandidates(
      const DataTable& table) const override {
    return UnaryCandidates(table, ColumnType::kNumeric);
  }

  StatusOr<double> EvaluateExact(const DataTable& table,
                                 const AttributeTuple& tuple,
                                 const std::string& metric) const override {
    FORESIGHT_RETURN_IF_ERROR(ExpectNumeric(table, tuple, 1));
    FORESIGHT_RETURN_IF_ERROR(ExpectMetric(metric, metric_names()));
    RunningMoments moments = MomentsOf(ValidValues(table, tuple.indices[0]));
    return FromMoments(moments, metric);
  }

  StatusOr<double> EvaluateSketch(const TableProfile& profile,
                                  const AttributeTuple& tuple,
                                  const std::string& metric) const override {
    FORESIGHT_RETURN_IF_ERROR(ExpectNumeric(profile.table(), tuple, 1));
    FORESIGHT_RETURN_IF_ERROR(ExpectMetric(metric, metric_names()));
    return FromMoments(profile.numeric_sketch(tuple.indices[0]).moments,
                       metric);
  }

  bool SupportsSketch() const override { return true; }
  VisualizationKind visualization() const override {
    return VisualizationKind::kHistogram;
  }

 protected:
  virtual StatusOr<double> FromMoments(const RunningMoments& moments,
                                       const std::string& metric) const = 0;
};

/// 1. Dispersion: very high or low dispersion around the mean, measured by
/// the variance (default) or the scale-free coefficient of variation.
class DispersionClass final : public MomentsBasedClass {
 public:
  std::string name() const override { return "dispersion"; }
  std::string display_name() const override { return "Dispersion"; }
  std::vector<std::string> metric_names() const override {
    return {"variance", "cv", "stddev"};
  }

  std::string Describe(const Insight& insight) const override {
    return "Dispersion of " + insight.attribute_names[0] + ": " +
           insight.metric_name + " = " + FormatDouble(insight.raw_value, 4);
  }

 protected:
  StatusOr<double> FromMoments(const RunningMoments& moments,
                               const std::string& metric) const override {
    if (metric == "variance") return moments.variance();
    if (metric == "stddev") return moments.stddev();
    double cv = moments.coefficient_of_variation();
    return std::isinf(cv) ? 1e300 : cv;
  }
};

/// 2. Skew: asymmetry, measured by the standardized skewness coefficient.
class SkewClass final : public MomentsBasedClass {
 public:
  std::string name() const override { return "skew"; }
  std::string display_name() const override { return "Skew"; }
  std::vector<std::string> metric_names() const override {
    return {"skewness"};
  }

  std::string Describe(const Insight& insight) const override {
    const char* direction = insight.raw_value < 0 ? "left" : "right";
    return insight.attribute_names[0] + " is " + direction + "-skewed (gamma1 = " +
           FormatDouble(insight.raw_value, 3) + ")";
  }

 protected:
  StatusOr<double> FromMoments(const RunningMoments& moments,
                               const std::string& metric) const override {
    (void)metric;
    return moments.skewness();
  }
};

/// 3. Heavy Tails: propensity toward extreme values, measured by kurtosis.
class HeavyTailsClass final : public MomentsBasedClass {
 public:
  std::string name() const override { return "heavy_tails"; }
  std::string display_name() const override { return "Heavy Tails"; }
  std::vector<std::string> metric_names() const override {
    return {"kurtosis", "excess_kurtosis"};
  }

  std::string Describe(const Insight& insight) const override {
    return insight.attribute_names[0] + " has heavy tails (kurtosis = " +
           FormatDouble(insight.raw_value, 3) + ")";
  }

 protected:
  StatusOr<double> FromMoments(const RunningMoments& moments,
                               const std::string& metric) const override {
    if (metric == "excess_kurtosis") return moments.excess_kurtosis();
    return moments.kurtosis();
  }
};

/// 4. Outliers: presence and significance of extreme outliers; metric is the
/// average standardized distance of the detected outliers from the mean.
/// The detection algorithm is user-configurable ("zscore", "iqr", "mad").
class OutliersClass final : public InsightClass {
 public:
  explicit OutliersClass(const std::string& detector_name)
      : detector_(MakeOutlierDetector(detector_name)) {
    FORESIGHT_CHECK_MSG(detector_ != nullptr, "unknown outlier detector");
  }

  std::string name() const override { return "outliers"; }
  std::string display_name() const override { return "Outliers"; }
  size_t arity() const override { return 1; }
  std::vector<std::string> metric_names() const override {
    return {"mean_standardized_distance"};
  }

  std::vector<AttributeTuple> EnumerateCandidates(
      const DataTable& table) const override {
    return UnaryCandidates(table, ColumnType::kNumeric);
  }

  StatusOr<double> EvaluateExact(const DataTable& table,
                                 const AttributeTuple& tuple,
                                 const std::string& metric) const override {
    FORESIGHT_RETURN_IF_ERROR(ExpectNumeric(table, tuple, 1));
    FORESIGHT_RETURN_IF_ERROR(ExpectMetric(metric, metric_names()));
    OutlierResult result = detector_->Detect(ValidValues(table, tuple.indices[0]));
    return result.mean_standardized_distance;
  }

  /// Sketch path: Tukey fences from the KLL quantile sketch, applied to the
  /// reservoir sample, with distances standardized by the exact moments.
  StatusOr<double> EvaluateSketch(const TableProfile& profile,
                                  const AttributeTuple& tuple,
                                  const std::string& metric) const override {
    FORESIGHT_RETURN_IF_ERROR(ExpectNumeric(profile.table(), tuple, 1));
    FORESIGHT_RETURN_IF_ERROR(ExpectMetric(metric, metric_names()));
    const NumericColumnSketch& sketch = profile.numeric_sketch(tuple.indices[0]);
    if (sketch.quantiles.empty()) return 0.0;
    double q1 = sketch.quantiles.Quantile(0.25);
    double q3 = sketch.quantiles.Quantile(0.75);
    double iqr = q3 - q1;
    if (iqr <= 0.0) return 0.0;
    double lo = q1 - 1.5 * iqr;
    double hi = q3 + 1.5 * iqr;
    double sigma = sketch.moments.stddev();
    if (sigma <= 0.0) return 0.0;
    double mean = sketch.moments.mean();
    double total = 0.0;
    size_t count = 0;
    for (double v : sketch.sample.values()) {
      if (v < lo || v > hi) {
        total += std::abs(v - mean) / sigma;
        ++count;
      }
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
  }

  bool SupportsSketch() const override { return true; }
  VisualizationKind visualization() const override {
    return VisualizationKind::kBoxPlot;
  }

  std::string Describe(const Insight& insight) const override {
    return insight.attribute_names[0] +
           " has extreme outliers (mean standardized distance = " +
           FormatDouble(insight.raw_value, 3) + ", detector = " +
           detector_->name() + ")";
  }

 private:
  std::unique_ptr<OutlierDetector> detector_;
};

/// 8. Multimodality: KDE-based modality score (default) or Sarle's
/// bimodality coefficient. Sketch path evaluates over the reservoir sample.
class MultimodalityClass final : public InsightClass {
 public:
  std::string name() const override { return "multimodality"; }
  std::string display_name() const override { return "Multimodality"; }
  size_t arity() const override { return 1; }
  std::vector<std::string> metric_names() const override {
    return {"kde_modality", "bimodality_coefficient"};
  }

  std::vector<AttributeTuple> EnumerateCandidates(
      const DataTable& table) const override {
    return UnaryCandidates(table, ColumnType::kNumeric);
  }

  StatusOr<double> EvaluateExact(const DataTable& table,
                                 const AttributeTuple& tuple,
                                 const std::string& metric) const override {
    FORESIGHT_RETURN_IF_ERROR(ExpectNumeric(table, tuple, 1));
    FORESIGHT_RETURN_IF_ERROR(ExpectMetric(metric, metric_names()));
    std::vector<double> values = ValidValues(table, tuple.indices[0]);
    if (metric == "bimodality_coefficient") {
      return BimodalityCoefficient(values);
    }
    return MultimodalityScore(values);
  }

  StatusOr<double> EvaluateSketch(const TableProfile& profile,
                                  const AttributeTuple& tuple,
                                  const std::string& metric) const override {
    FORESIGHT_RETURN_IF_ERROR(ExpectNumeric(profile.table(), tuple, 1));
    FORESIGHT_RETURN_IF_ERROR(ExpectMetric(metric, metric_names()));
    const NumericColumnSketch& sketch = profile.numeric_sketch(tuple.indices[0]);
    if (metric == "bimodality_coefficient") {
      const RunningMoments& m = sketch.moments;
      double kurt = m.kurtosis();
      // NaN kurtosis (constant column) compares false and returns 0.0, same
      // as the exact-path BimodalityCoefficient: not bimodal.
      if (!(kurt > 0.0)) return 0.0;
      return (m.skewness() * m.skewness() + 1.0) / kurt;
    }
    return MultimodalityScore(sketch.sample.values());
  }

  bool SupportsSketch() const override { return true; }
  VisualizationKind visualization() const override {
    return VisualizationKind::kDensity;
  }

  std::string Describe(const Insight& insight) const override {
    return insight.attribute_names[0] + " looks multimodal (" +
           insight.metric_name + " = " + FormatDouble(insight.raw_value, 3) +
           ")";
  }
};

/// 12. Missing Values: fraction of null rows, over every column type.
class MissingValuesClass final : public InsightClass {
 public:
  std::string name() const override { return "missing_values"; }
  std::string display_name() const override { return "Missing Values"; }
  size_t arity() const override { return 1; }
  std::vector<std::string> metric_names() const override {
    return {"null_fraction"};
  }

  std::vector<AttributeTuple> EnumerateCandidates(
      const DataTable& table) const override {
    std::vector<AttributeTuple> tuples;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      tuples.push_back(AttributeTuple{{c}});
    }
    return tuples;
  }

  StatusOr<double> EvaluateExact(const DataTable& table,
                                 const AttributeTuple& tuple,
                                 const std::string& metric) const override {
    FORESIGHT_RETURN_IF_ERROR(ExpectMetric(metric, metric_names()));
    if (tuple.arity() != 1 || tuple.indices[0] >= table.num_columns()) {
      return Status::InvalidArgument("missing_values expects one valid column");
    }
    const Column& column = table.column(tuple.indices[0]);
    if (column.size() == 0) return 0.0;
    return static_cast<double>(column.null_count()) /
           static_cast<double>(column.size());
  }

  /// Null counts are exact metadata on the column, so the sketch path is the
  /// exact path (and is O(1)).
  bool SupportsSketch() const override { return true; }
  VisualizationKind visualization() const override {
    return VisualizationKind::kBar;
  }

  std::string Describe(const Insight& insight) const override {
    return insight.attribute_names[0] + " is missing in " +
           FormatDouble(insight.raw_value * 100.0, 3) + "% of rows";
  }
};

}  // namespace

std::unique_ptr<InsightClass> MakeDispersionClass() {
  return std::make_unique<DispersionClass>();
}
std::unique_ptr<InsightClass> MakeSkewClass() {
  return std::make_unique<SkewClass>();
}
std::unique_ptr<InsightClass> MakeHeavyTailsClass() {
  return std::make_unique<HeavyTailsClass>();
}
std::unique_ptr<InsightClass> MakeOutliersClass(
    const std::string& detector_name) {
  return std::make_unique<OutliersClass>(detector_name);
}
std::unique_ptr<InsightClass> MakeMultimodalityClass() {
  return std::make_unique<MultimodalityClass>();
}
std::unique_ptr<InsightClass> MakeMissingValuesClass() {
  return std::make_unique<MissingValuesClass>();
}

}  // namespace foresight
