#include "core/explorer.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/first_error.h"
#include "util/thread_pool.h"

namespace foresight {

ExplorationSession::ExplorationSession(const InsightEngine& engine,
                                       ExplorationOptions options)
    : engine_(&engine),
      owned_session_(std::make_unique<QuerySession>(engine)),
      query_session_(owned_session_.get()),
      options_(options) {}

ExplorationSession::ExplorationSession(const QuerySession& session,
                                       ExplorationOptions options)
    : engine_(&session.engine()),
      query_session_(&session),
      options_(options) {}

StatusOr<std::vector<Carousel>> ExplorationSession::InitialCarousels() const {
  return BuildCarousels(/*apply_focus=*/false);
}

void ExplorationSession::Focus(const Insight& insight) {
  for (const Insight& existing : focus_) {
    if (existing.Key() == insight.Key()) return;
  }
  focus_.push_back(insight);
}

void ExplorationSession::Unfocus(const std::string& insight_key) {
  focus_.erase(std::remove_if(focus_.begin(), focus_.end(),
                              [&](const Insight& insight) {
                                return insight.Key() == insight_key;
                              }),
               focus_.end());
}

StatusOr<std::vector<Carousel>> ExplorationSession::Recommendations() const {
  return BuildCarousels(/*apply_focus=*/!focus_.empty());
}

double ExplorationSession::Similarity(const Insight& a,
                                      const Insight& b) const {
  double attribute_similarity = AttributeJaccard(a.attributes, b.attributes);
  if (a.class_name != b.class_name) {
    // Cross-class: only structural (shared attributes) similarity counts.
    return options_.attribute_weight * attribute_similarity;
  }
  // Same class: metric scores live on the same scale, so score proximity is
  // meaningful. Map |score gap| through a soft falloff.
  double score_gap = std::abs(a.score - b.score);
  double score_similarity = 1.0 / (1.0 + 4.0 * score_gap);
  return options_.attribute_weight * attribute_similarity +
         options_.score_weight * score_similarity;
}

StatusOr<std::vector<Carousel>> ExplorationSession::BuildCarousels(
    bool apply_focus) const {
  size_t pool_size = options_.carousel_size *
                     (apply_focus ? std::max<size_t>(1, options_.pool_factor) : 1);
  const std::vector<std::string> names = engine_->registry().names();

  // One carousel per class, built into position-indexed slots — fanned out
  // on the engine's shared thread pool (each per-class query itself fans its
  // candidate evaluations out on the same pool; ParallelFor is reentrant).
  // Errors report the first class in registry order, matching a serial scan.
  std::vector<std::optional<Carousel>> slots(names.size());
  FirstError first_error;
  auto build_class = [&](size_t class_begin, size_t class_end) {
    for (size_t idx = class_begin; idx < class_end; ++idx) {
      if (first_error.ShadowedAt(idx)) return;
      StatusOr<Carousel> carousel = BuildOneCarousel(names[idx], pool_size,
                                                     apply_focus);
      if (!carousel.ok()) {
        first_error.Record(idx, carousel.status());
        return;
      }
      slots[idx] = std::move(*carousel);
    }
  };
  ThreadPool* pool = engine_->thread_pool();
  if (pool != nullptr && names.size() > 1) {
    pool->ParallelFor(0, names.size(), 1, build_class);
  } else {
    build_class(0, names.size());
  }
  if (first_error.has_error()) return first_error.status();
  std::vector<Carousel> carousels;
  carousels.reserve(names.size());
  for (std::optional<Carousel>& slot : slots) {
    carousels.push_back(std::move(*slot));
  }
  return carousels;
}

StatusOr<Carousel> ExplorationSession::BuildOneCarousel(
    const std::string& class_name, size_t pool_size, bool apply_focus) const {
  const InsightClass* insight_class = engine_->registry().Find(class_name);
  InsightQuery query;
  query.class_name = class_name;
  query.top_k = pool_size;
  query.mode = options_.mode;
  // Through the serving layer: repeated carousel builds (initial view, every
  // focus-driven re-recommendation) hit the result cache instead of
  // re-evaluating the class. Focus re-ranking below happens on the returned
  // copy, so cached entries stay pristine.
  FORESIGHT_ASSIGN_OR_RETURN(InsightQueryResult result,
                             query_session_->Execute(query));
  Carousel carousel;
  carousel.class_name = class_name;
  carousel.display_name = insight_class->display_name();
  carousel.insights = std::move(result.insights);

  if (apply_focus && !carousel.insights.empty()) {
    // Re-rank the pool toward the focus neighborhood: blend base strength
    // (normalized within the pool, since score scales differ per class)
    // with the best similarity to any focused insight.
    double max_score = 0.0;
    for (const Insight& insight : carousel.insights) {
      max_score = std::max(max_score, insight.score);
    }
    auto rank_score = [&](const Insight& insight) {
      double normalized = max_score > 0.0 ? insight.score / max_score : 0.0;
      double best_similarity = 0.0;
      for (const Insight& focused : focus_) {
        best_similarity =
            std::max(best_similarity, Similarity(insight, focused));
      }
      return (1.0 - options_.focus_boost) * normalized +
             options_.focus_boost * best_similarity;
    };
    std::stable_sort(carousel.insights.begin(), carousel.insights.end(),
                     [&](const Insight& a, const Insight& b) {
                       return rank_score(a) > rank_score(b);
                     });
  }
  if (carousel.insights.size() > options_.carousel_size) {
    carousel.insights.resize(options_.carousel_size);
  }
  return carousel;
}

JsonValue ExplorationSession::SaveState() const {
  JsonValue state = JsonValue::Object();
  state.Set("version", 1);
  JsonValue focus_array = JsonValue::Array();
  for (const Insight& insight : focus_) {
    JsonValue item = JsonValue::Object();
    item.Set("class", insight.class_name);
    item.Set("metric", insight.metric_name);
    JsonValue attrs = JsonValue::Array();
    for (const std::string& name : insight.attribute_names) {
      attrs.Append(name);
    }
    item.Set("attributes", std::move(attrs));
    item.Set("score", insight.score);
    item.Set("raw_value", insight.raw_value);
    focus_array.Append(std::move(item));
  }
  state.Set("focus", std::move(focus_array));
  JsonValue opts = JsonValue::Object();
  opts.Set("carousel_size", options_.carousel_size);
  opts.Set("attribute_weight", options_.attribute_weight);
  opts.Set("score_weight", options_.score_weight);
  opts.Set("focus_boost", options_.focus_boost);
  opts.Set("pool_factor", options_.pool_factor);
  state.Set("options", std::move(opts));
  return state;
}

StatusOr<ExplorationSession> ExplorationSession::LoadState(
    const InsightEngine& engine, const JsonValue& state) {
  if (!state.is_object()) {
    return Status::ParseError("session state must be a JSON object");
  }
  ExplorationOptions options;
  if (const JsonValue* opts = state.Get("options"); opts && opts->is_object()) {
    if (const JsonValue* v = opts->Get("carousel_size"); v && v->is_number()) {
      options.carousel_size = static_cast<size_t>(v->as_number());
    }
    if (const JsonValue* v = opts->Get("attribute_weight"); v && v->is_number()) {
      options.attribute_weight = v->as_number();
    }
    if (const JsonValue* v = opts->Get("score_weight"); v && v->is_number()) {
      options.score_weight = v->as_number();
    }
    if (const JsonValue* v = opts->Get("focus_boost"); v && v->is_number()) {
      options.focus_boost = v->as_number();
    }
    if (const JsonValue* v = opts->Get("pool_factor"); v && v->is_number()) {
      options.pool_factor = static_cast<size_t>(v->as_number());
    }
  }
  ExplorationSession session(engine, options);

  const JsonValue* focus = state.Get("focus");
  if (focus != nullptr) {
    if (!focus->is_array()) {
      return Status::ParseError("'focus' must be an array");
    }
    for (size_t i = 0; i < focus->size(); ++i) {
      const JsonValue& item = focus->at(i);
      const JsonValue* class_name = item.Get("class");
      const JsonValue* attrs = item.Get("attributes");
      if (class_name == nullptr || !class_name->is_string() ||
          attrs == nullptr || !attrs->is_array()) {
        return Status::ParseError("focus item missing 'class' or 'attributes'");
      }
      AttributeTuple tuple;
      for (size_t a = 0; a < attrs->size(); ++a) {
        if (!attrs->at(a).is_string()) {
          return Status::ParseError("attribute names must be strings");
        }
        FORESIGHT_ASSIGN_OR_RETURN(
            size_t index, engine.table().ColumnIndex(attrs->at(a).as_string()));
        tuple.indices.push_back(index);
      }
      const JsonValue* metric = item.Get("metric");
      std::string metric_name =
          (metric != nullptr && metric->is_string()) ? metric->as_string() : "";
      // Re-evaluate against the engine so restored scores match the data.
      FORESIGHT_ASSIGN_OR_RETURN(
          Insight insight,
          engine.EvaluateTuple(class_name->as_string(), tuple, metric_name));
      session.Focus(insight);
    }
  }
  return session;
}

}  // namespace foresight
