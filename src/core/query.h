#ifndef FORESIGHT_CORE_QUERY_H_
#define FORESIGHT_CORE_QUERY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/insight.h"
#include "util/json.h"
#include "util/status.h"
#include "util/trace.h"

namespace foresight {

class InsightClassRegistry;
class DataTable;

/// Which computation path serves a query.
enum class ExecutionMode {
  kExact,   ///< Full-data metrics.
  kSketch,  ///< Sketch/sample estimates (§3).
  kAuto,    ///< Engine default (sketch when a profile is available).
};

/// Stable v1 wire name of an execution mode: "exact", "sketch", or "auto".
const char* ExecutionModeName(ExecutionMode mode);

/// Parses a v1 wire mode name; InvalidArgument for anything else.
StatusOr<ExecutionMode> ParseExecutionMode(std::string_view name);

/// An insight query (§2.1): "A basic insight query returns the visualizations
/// for the highest-ranked feature tuples according to the insight metric
/// selected", optionally with fixed attributes and strength filters.
struct InsightQuery {
  /// Registry name of the insight class to query (required).
  std::string class_name;
  /// Ranking metric; empty selects the class default.
  std::string metric;
  /// Number of top-ranked insights to return.
  size_t top_k = 10;
  /// Attribute names that must ALL appear in each returned tuple, e.g. fixing
  /// x = x0 and ranking over pairs (x0, y). Empty = unconstrained.
  std::vector<std::string> fixed_attributes;
  /// Metadata constraints (§2.1 future work, implemented here): every
  /// attribute of each returned tuple must carry ALL of these semantic tags
  /// (e.g. {"currency"} to rank only money-valued attributes). Tags are
  /// attached via DataTable::TagColumn. Empty = unconstrained.
  std::vector<std::string> required_tags;
  /// Inclusive bounds on the strength score (e.g. |rho| in [0.5, 0.8] "to
  /// filter out trivially very high correlations").
  std::optional<double> min_score;
  std::optional<double> max_score;
  ExecutionMode mode = ExecutionMode::kAuto;

  /// Context-free validation: non-empty class_name, min_score <= max_score.
  Status Validate() const;

  /// Full validation against an engine's registry and table: everything
  /// Validate() checks plus unknown class, unsupported metric, and unknown
  /// fixed attributes. The single source of the error messages that
  /// InsightEngine::Execute, ExecuteBatch, and QuerySession all report, so
  /// every serving path fails identically for the same bad query.
  Status Validate(const InsightClassRegistry& registry,
                  const DataTable& table) const;

  /// Canonical cache key for the QuerySession result cache. Two queries that
  /// must produce identical results map to the same key: fixed attributes and
  /// required tags are sorted (order-insensitive), and the caller supplies
  /// the default-resolved metric and the kAuto-resolved execution mode so
  /// `metric = ""` / `mode = kAuto` alias their explicit spellings.
  std::string CacheKey(const std::string& resolved_metric,
                       ExecutionMode resolved_mode) const;

  /// v1 wire encoding (DESIGN.md "Wire API v1"):
  ///   {"class": "...", "top_k": N, "mode": "exact|sketch|auto",
  ///    "metric"?: "...", "fixed_attributes"?: [...],
  ///    "required_tags"?: [...], "min_score"?: x, "max_score"?: x}
  /// `class`, `top_k`, and `mode` are always emitted; empty metric, empty
  /// attribute/tag lists, and unset score bounds are omitted.
  /// FromJson(ToJson()) is the identity.
  JsonValue ToJson() const;

  /// Strict v1 decoder — the single JSON entry point shared by the HTTP
  /// server, the fuzz harnesses, and the tests (no ad-hoc parsing in
  /// handlers). Rejects with InvalidArgument: non-object documents, unknown
  /// fields (typos must not silently run a default query), wrong field
  /// types, non-integral / negative / > 1e9 top_k, unknown mode names, and
  /// anything the context-free Validate() rejects. Field semantics are
  /// frozen: additions to the v1 schema may only be new optional fields.
  static StatusOr<InsightQuery> FromJson(const JsonValue& json);
};

/// Telemetry of the sketch-first prune planner (DESIGN.md "Sketch-first
/// pruning"). All-zero with used == false when the planner did not run
/// (ineligible query, pruning disabled, or no profile). Counts are a pure
/// function of the query and profile — deterministic across worker counts.
struct PruneTelemetry {
  bool used = false;          ///< The estimate→prune→refine pipeline ran.
  size_t pairs_total = 0;     ///< Candidate pairs the planner considered.
  size_t pairs_estimated = 0; ///< Pairs scored from sketch signatures.
  size_t pairs_escalated = 0; ///< Coarse-pass survivors re-scored at full k.
  size_t pairs_pruned = 0;    ///< Pairs whose score upper bound missed top-k.
  size_t pairs_refined = 0;   ///< Pairs evaluated with the exact metric.
  size_t pairs_unsafe = 0;    ///< Pairs with no valid bound (always refined).
};

/// Query outcome: ranked insights plus execution telemetry.
struct InsightQueryResult {
  std::vector<Insight> insights;  ///< Sorted by descending score.
  /// Candidates the query CONSIDERED (post structural filters). When the
  /// prune planner ran (prune.used), sketch bounds eliminated some of these
  /// without exact evaluation — prune.pairs_refined counts the exact
  /// evaluations — but this field still reports the full considered count so
  /// it is comparable across pruned and exhaustive executions.
  size_t candidates_evaluated = 0;
  /// Candidates whose metric evaluated to a non-finite raw value (undefined —
  /// e.g. kurtosis of a constant column) and were excluded from ranking.
  size_t undefined_excluded = 0;
  /// End-to-end latency of the call that produced this result. On a
  /// QuerySession cache hit this is the measured hit-path latency (resolve +
  /// lookup + copy), never a stale or zero value.
  double elapsed_ms = 0.0;
  /// The kAuto-resolved mode that computed the insights; preserved verbatim
  /// when the result is served from the cache.
  ExecutionMode mode_used = ExecutionMode::kExact;
  /// True when a QuerySession served this result from its cache.
  bool cache_hit = false;
  /// Cache shard the result's key maps to (set by QuerySession on both the
  /// hit and the store-after-miss path; deterministic across platforms).
  size_t cache_shard = 0;
  /// Per-stage timing breakdown (observability only; all-zero when the engine
  /// runs with collect_metrics = false). On a QuerySession cache hit the
  /// engine stages describe the original computing call and kCacheLookup
  /// describes this serving call — see QueryTrace.
  QueryTrace trace;
  /// Sketch-first prune planner telemetry (used == false when it didn't run).
  PruneTelemetry prune;
};

}  // namespace foresight

#endif  // FORESIGHT_CORE_QUERY_H_
