#ifndef FORESIGHT_CORE_QUERY_H_
#define FORESIGHT_CORE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "core/insight.h"

namespace foresight {

/// Which computation path serves a query.
enum class ExecutionMode {
  kExact,   ///< Full-data metrics.
  kSketch,  ///< Sketch/sample estimates (§3).
  kAuto,    ///< Engine default (sketch when a profile is available).
};

/// An insight query (§2.1): "A basic insight query returns the visualizations
/// for the highest-ranked feature tuples according to the insight metric
/// selected", optionally with fixed attributes and strength filters.
struct InsightQuery {
  /// Registry name of the insight class to query (required).
  std::string class_name;
  /// Ranking metric; empty selects the class default.
  std::string metric;
  /// Number of top-ranked insights to return.
  size_t top_k = 10;
  /// Attribute names that must ALL appear in each returned tuple, e.g. fixing
  /// x = x0 and ranking over pairs (x0, y). Empty = unconstrained.
  std::vector<std::string> fixed_attributes;
  /// Metadata constraints (§2.1 future work, implemented here): every
  /// attribute of each returned tuple must carry ALL of these semantic tags
  /// (e.g. {"currency"} to rank only money-valued attributes). Tags are
  /// attached via DataTable::TagColumn. Empty = unconstrained.
  std::vector<std::string> required_tags;
  /// Inclusive bounds on the strength score (e.g. |rho| in [0.5, 0.8] "to
  /// filter out trivially very high correlations").
  std::optional<double> min_score;
  std::optional<double> max_score;
  ExecutionMode mode = ExecutionMode::kAuto;
};

/// Query outcome: ranked insights plus execution telemetry.
struct InsightQueryResult {
  std::vector<Insight> insights;  ///< Sorted by descending score.
  size_t candidates_evaluated = 0;
  double elapsed_ms = 0.0;
  ExecutionMode mode_used = ExecutionMode::kExact;
};

}  // namespace foresight

#endif  // FORESIGHT_CORE_QUERY_H_
