#ifndef FORESIGHT_CORE_INSIGHT_CLASSES_H_
#define FORESIGHT_CORE_INSIGHT_CLASSES_H_

#include <memory>

#include "core/insight_class.h"

namespace foresight {

/// Factories for the 12 built-in insight classes (DESIGN.md §3).
/// Classes 1-6 follow §2.2 of the paper literally; 7-10 are the "additional
/// insights" it names (multimodality, nonlinear monotonic relationships,
/// general statistical dependencies, segmentation); 11-12 round out the
/// twelve carousels of Figure 1.

std::unique_ptr<InsightClass> MakeDispersionClass();                // 1
std::unique_ptr<InsightClass> MakeSkewClass();                      // 2
std::unique_ptr<InsightClass> MakeHeavyTailsClass();                // 3
/// `detector_name`: "zscore", "iqr", or "mad" (§2.2: user-configurable).
std::unique_ptr<InsightClass> MakeOutliersClass(
    const std::string& detector_name = "iqr");                     // 4
/// `k`: the configurable heavy-hitter count of RelFreq(k, c).
std::unique_ptr<InsightClass> MakeHeterogeneousFrequenciesClass(
    size_t k = 5);                                                 // 5
std::unique_ptr<InsightClass> MakeLinearRelationshipClass();        // 6
std::unique_ptr<InsightClass> MakeMonotonicRelationshipClass();     // 7
std::unique_ptr<InsightClass> MakeMultimodalityClass();             // 8
std::unique_ptr<InsightClass> MakeGeneralDependenceClass();         // 9
/// `max_group_cardinality`: categorical columns with more distinct values
/// than this are not considered as segmenting attributes.
std::unique_ptr<InsightClass> MakeSegmentationClass(
    size_t max_group_cardinality = 16);                            // 10
std::unique_ptr<InsightClass> MakeLowEntropyClass();                // 11
std::unique_ptr<InsightClass> MakeMissingValuesClass();             // 12

}  // namespace foresight

#endif  // FORESIGHT_CORE_INSIGHT_CLASSES_H_
