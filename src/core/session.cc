#include "core/session.h"

#include <string>
#include <utility>

#include "util/timer.h"
#include "util/trace.h"

namespace foresight {

namespace {

constexpr size_t kCacheLookupIdx =
    static_cast<size_t>(QueryStage::kCacheLookup);

}  // namespace

QuerySession::QuerySession(const InsightEngine& engine,
                           QuerySessionOptions options)
    : engine_(&engine), cache_(options.cache) {
  metrics_ = engine.metrics();
  if (metrics_ == nullptr) return;
  // The cache already maintains exact per-shard counters under its shard
  // mutexes; callback metrics surface them at export time instead of double
  // bookkeeping on the lookup hot path.
  auto add = [&](const char* name, CallbackKind kind,
                 std::function<double()> fn) {
    callback_tokens_.emplace_back(
        name, metrics_->RegisterCallback(name, kind, std::move(fn)));
  };
  add("query_cache.hits_total", CallbackKind::kCounter,
      [this] { return static_cast<double>(cache_.stats().hits); });
  add("query_cache.misses_total", CallbackKind::kCounter,
      [this] { return static_cast<double>(cache_.stats().misses); });
  add("query_cache.evictions_total", CallbackKind::kCounter,
      [this] { return static_cast<double>(cache_.stats().evictions); });
  add("query_cache.invalidations_total", CallbackKind::kCounter,
      [this] { return static_cast<double>(cache_.stats().invalidations); });
  add("query_cache.entries", CallbackKind::kGauge,
      [this] { return static_cast<double>(cache_.stats().entries); });
  add("query_cache.bytes", CallbackKind::kGauge,
      [this] { return static_cast<double>(cache_.stats().bytes); });
}

QuerySession::~QuerySession() {
  if (metrics_ == nullptr) return;
  for (const auto& [name, token] : callback_tokens_) {
    metrics_->RemoveCallback(name, token);
  }
}

StatusOr<InsightQueryResult> QuerySession::Execute(
    const InsightQuery& query) const {
  const bool collect = engine_->collect_metrics();
  // determinism-ok: serving latency telemetry, gated on collect_metrics.
  WallTimer timer{kDeferredStart};
  if (collect) timer.Restart();
  FORESIGHT_ASSIGN_OR_RETURN(ResolvedQuery resolved,
                             engine_->ResolveQuery(query));
  const std::string key = query.CacheKey(resolved.metric, resolved.mode);
  const uint64_t epoch = engine_->serving_epoch();
  const size_t shard = cache_.ShardOf(key);
  QueryTrace lookup_trace;
  std::optional<InsightQueryResult> cached;
  {
    StageSpan span(collect ? &lookup_trace : nullptr,
                   QueryStage::kCacheLookup);
    cached = cache_.Lookup(key, epoch);
  }
  const double lookup_ms = lookup_trace.stage_ms[kCacheLookupIdx];
  if (cached.has_value()) {
    cached->cache_hit = true;
    cached->cache_shard = shard;
    if (collect) {
      // End-to-end hit latency (resolve + lookup + copy), not the stale
      // compute time — and mode_used stays the resolved mode it was stored
      // with, so cached and computed results are indistinguishable modulo
      // the cache telemetry. The engine-side stage timings keep describing
      // the call that computed the payload; only the lookup stage and the
      // totals describe this serving call.
      cached->trace.stage_ms[kCacheLookupIdx] = lookup_ms;
      cached->elapsed_ms = timer.ElapsedMillis();
      cached->trace.total_ms = cached->elapsed_ms;
      metrics_->histogram("engine.stage.cache_lookup_ms").Record(lookup_ms);
      metrics_->histogram("session.hit_ms").Record(cached->elapsed_ms);
    }
    return std::move(*cached);
  }
  FORESIGHT_ASSIGN_OR_RETURN(InsightQueryResult result,
                             engine_->Execute(query));
  result.cache_hit = false;
  result.cache_shard = shard;
  // Inserted before the lookup stage is folded in, so the cached entry keeps
  // the pure compute-path trace.
  cache_.Insert(key, epoch, result);
  if (collect) {
    result.trace.stage_ms[kCacheLookupIdx] += lookup_ms;
    result.elapsed_ms = timer.ElapsedMillis();
    result.trace.total_ms = result.elapsed_ms;
    metrics_->histogram("engine.stage.cache_lookup_ms").Record(lookup_ms);
  }
  return result;
}

StatusOr<std::vector<InsightQueryResult>> QuerySession::ExecuteBatch(
    std::span<const InsightQuery> queries) const {
  const bool collect = engine_->collect_metrics();
  // determinism-ok: serving latency telemetry, gated on collect_metrics.
  WallTimer timer{kDeferredStart};
  if (collect) timer.Restart();
  const uint64_t epoch = engine_->serving_epoch();
  std::vector<InsightQueryResult> results(queries.size());
  std::vector<std::string> keys(queries.size());
  std::vector<double> lookup_ms(queries.size(), 0.0);
  std::vector<size_t> miss_indices;
  std::vector<InsightQuery> miss_queries;
  for (size_t q = 0; q < queries.size(); ++q) {
    FORESIGHT_ASSIGN_OR_RETURN(ResolvedQuery resolved,
                               engine_->ResolveQuery(queries[q]));
    keys[q] = queries[q].CacheKey(resolved.metric, resolved.mode);
    QueryTrace lookup_trace;
    std::optional<InsightQueryResult> cached;
    {
      StageSpan span(collect ? &lookup_trace : nullptr,
                     QueryStage::kCacheLookup);
      cached = cache_.Lookup(keys[q], epoch);
    }
    lookup_ms[q] = lookup_trace.stage_ms[kCacheLookupIdx];
    if (collect) {
      metrics_->histogram("engine.stage.cache_lookup_ms").Record(lookup_ms[q]);
    }
    if (cached.has_value()) {
      cached->cache_hit = true;
      cached->cache_shard = cache_.ShardOf(keys[q]);
      if (collect) {
        cached->trace.stage_ms[kCacheLookupIdx] = lookup_ms[q];
        cached->elapsed_ms = timer.ElapsedMillis();
        cached->trace.total_ms = cached->elapsed_ms;
      }
      results[q] = std::move(*cached);
    } else {
      miss_indices.push_back(q);
      miss_queries.push_back(queries[q]);
    }
  }
  if (!miss_queries.empty()) {
    FORESIGHT_ASSIGN_OR_RETURN(std::vector<InsightQueryResult> computed,
                               engine_->ExecuteBatch(miss_queries));
    for (size_t m = 0; m < miss_indices.size(); ++m) {
      size_t q = miss_indices[m];
      computed[m].cache_hit = false;
      computed[m].cache_shard = cache_.ShardOf(keys[q]);
      cache_.Insert(keys[q], epoch, computed[m]);
      if (collect) {
        computed[m].trace.stage_ms[kCacheLookupIdx] += lookup_ms[q];
        computed[m].elapsed_ms = timer.ElapsedMillis();
        computed[m].trace.total_ms = computed[m].elapsed_ms;
      }
      results[q] = std::move(computed[m]);
    }
  }
  return results;
}

}  // namespace foresight
