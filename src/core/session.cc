#include "core/session.h"

#include <string>
#include <utility>

#include "util/timer.h"

namespace foresight {

QuerySession::QuerySession(const InsightEngine& engine,
                           QuerySessionOptions options)
    : engine_(&engine), cache_(options.cache) {}

StatusOr<InsightQueryResult> QuerySession::Execute(
    const InsightQuery& query) const {
  WallTimer timer;
  FORESIGHT_ASSIGN_OR_RETURN(ResolvedQuery resolved,
                             engine_->ResolveQuery(query));
  const std::string key = query.CacheKey(resolved.metric, resolved.mode);
  const uint64_t epoch = engine_->serving_epoch();
  const size_t shard = cache_.ShardOf(key);
  if (std::optional<InsightQueryResult> cached = cache_.Lookup(key, epoch)) {
    cached->cache_hit = true;
    cached->cache_shard = shard;
    // End-to-end hit latency (resolve + lookup + copy), not the stale
    // compute time — and mode_used stays the resolved mode it was stored
    // with, so cached and computed results are indistinguishable modulo
    // the cache telemetry.
    cached->elapsed_ms = timer.ElapsedMillis();
    return std::move(*cached);
  }
  FORESIGHT_ASSIGN_OR_RETURN(InsightQueryResult result,
                             engine_->Execute(query));
  result.cache_hit = false;
  result.cache_shard = shard;
  cache_.Insert(key, epoch, result);
  result.elapsed_ms = timer.ElapsedMillis();
  return result;
}

StatusOr<std::vector<InsightQueryResult>> QuerySession::ExecuteBatch(
    std::span<const InsightQuery> queries) const {
  WallTimer timer;
  const uint64_t epoch = engine_->serving_epoch();
  std::vector<InsightQueryResult> results(queries.size());
  std::vector<std::string> keys(queries.size());
  std::vector<size_t> miss_indices;
  std::vector<InsightQuery> miss_queries;
  for (size_t q = 0; q < queries.size(); ++q) {
    FORESIGHT_ASSIGN_OR_RETURN(ResolvedQuery resolved,
                               engine_->ResolveQuery(queries[q]));
    keys[q] = queries[q].CacheKey(resolved.metric, resolved.mode);
    if (std::optional<InsightQueryResult> cached =
            cache_.Lookup(keys[q], epoch)) {
      cached->cache_hit = true;
      cached->cache_shard = cache_.ShardOf(keys[q]);
      cached->elapsed_ms = timer.ElapsedMillis();
      results[q] = std::move(*cached);
    } else {
      miss_indices.push_back(q);
      miss_queries.push_back(queries[q]);
    }
  }
  if (!miss_queries.empty()) {
    FORESIGHT_ASSIGN_OR_RETURN(std::vector<InsightQueryResult> computed,
                               engine_->ExecuteBatch(miss_queries));
    for (size_t m = 0; m < miss_indices.size(); ++m) {
      size_t q = miss_indices[m];
      computed[m].cache_hit = false;
      computed[m].cache_shard = cache_.ShardOf(keys[q]);
      cache_.Insert(keys[q], epoch, computed[m]);
      computed[m].elapsed_ms = timer.ElapsedMillis();
      results[q] = std::move(computed[m]);
    }
  }
  return results;
}

}  // namespace foresight
