#include "stats/regression.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace foresight {

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  FORESIGHT_CHECK(x.size() == y.size());
  LinearFit fit;
  size_t n = x.size();
  if (n < 2) return fit;
  double mean_x = std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
  double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mean_x;
    double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 0.0;
  fit.valid = true;
  return fit;
}

}  // namespace foresight
