#ifndef FORESIGHT_STATS_MULTIMODALITY_H_
#define FORESIGHT_STATS_MULTIMODALITY_H_

#include <cstddef>
#include <vector>

namespace foresight {

/// Gaussian kernel density estimate evaluated on a regular grid.
struct KdeResult {
  std::vector<double> grid;     ///< Evaluation points (ascending).
  std::vector<double> density;  ///< Density at each grid point.
  double bandwidth = 0.0;       ///< Bandwidth used (Silverman's rule).
};

/// Evaluates a Gaussian KDE on `grid_size` points spanning the data range
/// padded by one bandwidth on each side. Empty input yields empty grids.
KdeResult ComputeKde(const std::vector<double>& values, size_t grid_size = 128);

/// A local maximum of the KDE.
struct Mode {
  double location = 0.0;   ///< Grid position of the peak.
  double density = 0.0;    ///< Density at the peak.
  double prominence = 0.0; ///< Peak height above the higher flanking valley.
};

/// Finds KDE modes, keeping those whose prominence exceeds
/// `min_prominence_frac` of the global maximum density.
std::vector<Mode> FindModes(const KdeResult& kde,
                            double min_prominence_frac = 0.05);

/// Multimodality insight metric in [0, 1): 0 for unimodal data; for multimodal
/// data, the summed prominence of the secondary modes relative to the primary
/// peak, saturating via x / (1 + x). One of the paper's "additional insights".
double MultimodalityScore(const std::vector<double>& values);

/// Sarle's bimodality coefficient (gamma1^2 + 1) / kurtosis: a cheap
/// moments-only screen; > 5/9 suggests bi-/multi-modality. Provided as an
/// alternative ranking metric (the framework allows several per insight).
double BimodalityCoefficient(const std::vector<double>& values);

}  // namespace foresight

#endif  // FORESIGHT_STATS_MULTIMODALITY_H_
