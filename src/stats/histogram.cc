#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "stats/quantiles.h"
#include "util/logging.h"

namespace foresight {

uint64_t Histogram::total() const {
  uint64_t sum = 0;
  for (uint64_t c : counts) sum += c;
  return sum;
}

size_t Histogram::ArgMax() const {
  size_t best = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return best;
}

Histogram BuildHistogram(const std::vector<double>& values, size_t num_bins) {
  FORESIGHT_CHECK(num_bins >= 1);
  Histogram h;
  if (values.empty()) {
    h.edges = {0.0, 1.0};
    h.counts = {0};
    return h;
  }
  auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  double lo = *min_it;
  double hi = *max_it;
  if (lo == hi) {
    h.edges = {lo - 0.5, lo + 0.5};
    h.counts = {static_cast<uint64_t>(values.size())};
    return h;
  }
  double width = (hi - lo) / static_cast<double>(num_bins);
  h.edges.resize(num_bins + 1);
  for (size_t i = 0; i <= num_bins; ++i) {
    h.edges[i] = lo + width * static_cast<double>(i);
  }
  h.edges.back() = hi;  // Avoid floating-point drift on the last edge.
  h.counts.assign(num_bins, 0);
  for (double x : values) {
    size_t bin = static_cast<size_t>((x - lo) / width);
    if (bin >= num_bins) bin = num_bins - 1;  // x == hi lands in last bin.
    ++h.counts[bin];
  }
  return h;
}

size_t AutoBinCount(const std::vector<double>& values, size_t max_bins) {
  if (values.size() < 2) return 1;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double range = sorted.back() - sorted.front();
  if (range <= 0.0) return 1;
  double n = static_cast<double>(values.size());
  double iqr = SortedQuantile(sorted, 0.75) - SortedQuantile(sorted, 0.25);
  double bin_width;
  if (iqr > 0.0) {
    bin_width = 2.0 * iqr / std::cbrt(n);  // Freedman–Diaconis.
  } else {
    bin_width = range / (std::log2(n) + 1.0);  // Sturges fallback.
  }
  if (bin_width <= 0.0) return 1;
  size_t bins = static_cast<size_t>(std::ceil(range / bin_width));
  return std::clamp<size_t>(bins, 1, max_bins);
}

Histogram BuildAutoHistogram(const std::vector<double>& values,
                             size_t max_bins) {
  return BuildHistogram(values, AutoBinCount(values, max_bins));
}

}  // namespace foresight
