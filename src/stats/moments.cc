#include "stats/moments.h"

#include <cmath>
#include <limits>

namespace foresight {

void RunningMoments::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  // Pébay one-pass update.
  double n1 = static_cast<double>(n_);
  ++n_;
  double n = static_cast<double>(n_);
  double delta = x - mean_;
  double delta_n = delta / n;
  double delta_n2 = delta_n * delta_n;
  double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  double n = na + nb;
  double delta = other.mean_ - mean_;
  double delta2 = delta * delta;
  double delta3 = delta2 * delta;
  double delta4 = delta2 * delta2;

  double m4 = m4_ + other.m4_ +
              delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
              6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
              4.0 * delta * (na * other.m3_ - nb * m3_) / n;
  double m3 = m3_ + other.m3_ + delta3 * na * nb * (na - nb) / (n * n) +
              3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  double m2 = m2_ + other.m2_ + delta2 * na * nb / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningMoments::variance() const {
  if (n_ < 1) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

double RunningMoments::skewness() const {
  double nan = std::numeric_limits<double>::quiet_NaN();
  if (n_ < 1) return nan;
  double var = variance();
  if (var <= 0.0) return nan;  // Constant column: gamma_1 is undefined.
  double n = static_cast<double>(n_);
  double value = (m3_ / n) / std::pow(var, 1.5);
  // A denormal variance passes the var > 0 guard yet underflows pow(var, 1.5)
  // (and m3/n) to 0, producing 0/0 = NaN or +-Inf here. Either way the
  // standardized moment is numerically undefined — normalize to the NaN
  // sentinel so callers have one case to exclude.
  return std::isfinite(value) ? value : nan;
}

double RunningMoments::kurtosis() const {
  double nan = std::numeric_limits<double>::quiet_NaN();
  if (n_ < 1) return nan;
  double var = variance();
  if (var <= 0.0) return nan;  // Constant column: kurtosis is undefined.
  double n = static_cast<double>(n_);
  double value = (m4_ / n) / (var * var);
  // Same denormal-variance underflow as skewness: var * var -> 0 and
  // m4 / n -> 0 give 0/0 = NaN (e.g. the two-value column {0, 1e-160}).
  return std::isfinite(value) ? value : nan;
}

double RunningMoments::coefficient_of_variation() const {
  if (n_ == 0) return 0.0;
  double sd = stddev();
  if (mean_ == 0.0) {
    return sd > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return std::abs(sd / mean_);
}

RunningMoments RunningMoments::FromRaw(size_t n, double mean, double m2,
                                       double m3, double m4, double min,
                                       double max) {
  RunningMoments m;
  m.n_ = n;
  m.mean_ = mean;
  m.m2_ = m2;
  m.m3_ = m3;
  m.m4_ = m4;
  m.min_ = min;
  m.max_ = max;
  return m;
}

RunningMoments MomentsOf(const std::vector<double>& values) {
  RunningMoments m;
  for (double x : values) m.Add(x);
  return m;
}

}  // namespace foresight
