#include "stats/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/logging.h"
#include "util/random.h"

namespace foresight {

namespace {

double SquaredDistance(const Point2& a, const Point2& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace

KMeansResult KMeans(const std::vector<Point2>& points, size_t k, uint64_t seed,
                    size_t max_iterations) {
  KMeansResult result;
  if (points.empty() || k == 0) return result;
  k = std::min(k, points.size());
  Rng rng(seed);

  // k-means++ seeding.
  result.centroids.push_back(points[rng.UniformInt(points.size())]);
  std::vector<double> min_dist(points.size(),
                               std::numeric_limits<double>::max());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      min_dist[i] = std::min(min_dist[i],
                             SquaredDistance(points[i], result.centroids.back()));
      total += min_dist[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      result.centroids.push_back(points[rng.UniformInt(points.size())]);
      continue;
    }
    double target = rng.UniformDouble() * total;
    double cumulative = 0.0;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      cumulative += min_dist[i];
      if (cumulative >= target) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  result.labels.assign(points.size(), 0);
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < points.size(); ++i) {
      int32_t best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (size_t c = 0; c < result.centroids.size(); ++c) {
        double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best_dist) {
          best_dist = d;
          best = static_cast<int32_t>(c);
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Update step.
    std::vector<Point2> sums(k, Point2{});
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      sums[static_cast<size_t>(result.labels[i])].x += points[i].x;
      sums[static_cast<size_t>(result.labels[i])].y += points[i].y;
      ++counts[static_cast<size_t>(result.labels[i])];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = {sums[c].x / static_cast<double>(counts[c]),
                               sums[c].y / static_cast<double>(counts[c])};
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.inertia += SquaredDistance(
        points[i], result.centroids[static_cast<size_t>(result.labels[i])]);
  }
  return result;
}

namespace {

struct GroupStats {
  double sum_x = 0.0;
  double sum_y = 0.0;
  double count = 0.0;
};

}  // namespace

double SegmentationScore(const std::vector<Point2>& points,
                         const std::vector<int32_t>& labels) {
  FORESIGHT_CHECK(points.size() == labels.size());
  // std::map: the ss_between reduction below is order-sensitive in
  // floating point; ordered iteration keeps scores bit-identical
  // across platforms and hash implementations.
  std::map<int32_t, GroupStats> groups;
  double grand_x = 0.0, grand_y = 0.0, n = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels[i] < 0) continue;
    GroupStats& g = groups[labels[i]];
    g.sum_x += points[i].x;
    g.sum_y += points[i].y;
    g.count += 1.0;
    grand_x += points[i].x;
    grand_y += points[i].y;
    n += 1.0;
  }
  if (n < 2.0 || groups.size() < 2) return 0.0;
  grand_x /= n;
  grand_y /= n;
  double ss_between = 0.0;
  for (const auto& [label, g] : groups) {
    double dx = g.sum_x / g.count - grand_x;
    double dy = g.sum_y / g.count - grand_y;
    ss_between += g.count * (dx * dx + dy * dy);
  }
  double ss_total = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels[i] < 0) continue;
    double dx = points[i].x - grand_x;
    double dy = points[i].y - grand_y;
    ss_total += dx * dx + dy * dy;
  }
  if (ss_total <= 0.0) return 0.0;
  return std::clamp(ss_between / ss_total, 0.0, 1.0);
}

double CalinskiHarabasz(const std::vector<Point2>& points,
                        const std::vector<int32_t>& labels) {
  FORESIGHT_CHECK(points.size() == labels.size());
  // std::map: the ss_between reduction below is order-sensitive in
  // floating point; ordered iteration keeps scores bit-identical
  // across platforms and hash implementations.
  std::map<int32_t, GroupStats> groups;
  double grand_x = 0.0, grand_y = 0.0, n = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels[i] < 0) continue;
    GroupStats& g = groups[labels[i]];
    g.sum_x += points[i].x;
    g.sum_y += points[i].y;
    g.count += 1.0;
    grand_x += points[i].x;
    grand_y += points[i].y;
    n += 1.0;
  }
  size_t k = groups.size();
  if (n < 3.0 || k < 2 || n <= static_cast<double>(k)) return 0.0;
  grand_x /= n;
  grand_y /= n;
  double ss_between = 0.0;
  for (const auto& [label, g] : groups) {
    double dx = g.sum_x / g.count - grand_x;
    double dy = g.sum_y / g.count - grand_y;
    ss_between += g.count * (dx * dx + dy * dy);
  }
  double ss_within = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels[i] < 0) continue;
    const GroupStats& g = groups[labels[i]];
    double dx = points[i].x - g.sum_x / g.count;
    double dy = points[i].y - g.sum_y / g.count;
    ss_within += dx * dx + dy * dy;
  }
  if (ss_within <= 0.0) return std::numeric_limits<double>::infinity();
  double kd = static_cast<double>(k);
  return (ss_between / (kd - 1.0)) / (ss_within / (n - kd));
}

}  // namespace foresight
