#include "stats/dependence.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/logging.h"

namespace foresight {

namespace {

/// Maps values to equi-width bin ids in [0, bins).
std::vector<size_t> EquiWidthBins(const std::vector<double>& values,
                                  size_t bins) {
  std::vector<size_t> ids(values.size(), 0);
  if (values.empty()) return ids;
  auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  double lo = *min_it, hi = *max_it;
  if (lo == hi) return ids;
  double width = (hi - lo) / static_cast<double>(bins);
  for (size_t i = 0; i < values.size(); ++i) {
    size_t bin = static_cast<size_t>((values[i] - lo) / width);
    ids[i] = std::min(bin, bins - 1);
  }
  return ids;
}

double EntropyOfCounts(const std::vector<double>& counts, double total) {
  double h = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      double p = c / total;
      h -= p * std::log(p);
    }
  }
  return h;
}

}  // namespace

double BinnedMutualInformation(const std::vector<double>& x,
                               const std::vector<double>& y, size_t bins) {
  FORESIGHT_CHECK(x.size() == y.size());
  FORESIGHT_CHECK(bins >= 2);
  size_t n = x.size();
  if (n < 2) return 0.0;
  std::vector<size_t> bx = EquiWidthBins(x, bins);
  std::vector<size_t> by = EquiWidthBins(y, bins);
  std::vector<double> joint(bins * bins, 0.0);
  std::vector<double> mx(bins, 0.0), my(bins, 0.0);
  for (size_t i = 0; i < n; ++i) {
    joint[bx[i] * bins + by[i]] += 1.0;
    mx[bx[i]] += 1.0;
    my[by[i]] += 1.0;
  }
  double total = static_cast<double>(n);
  double mi = 0.0;
  for (size_t a = 0; a < bins; ++a) {
    if (mx[a] == 0.0) continue;
    for (size_t b = 0; b < bins; ++b) {
      double c = joint[a * bins + b];
      if (c == 0.0 || my[b] == 0.0) continue;
      double pxy = c / total;
      mi += pxy * std::log(pxy * total * total / (mx[a] * my[b]));
    }
  }
  return std::max(0.0, mi);
}

double NormalizedMutualInformation(const std::vector<double>& x,
                                   const std::vector<double>& y, size_t bins) {
  FORESIGHT_CHECK(x.size() == y.size());
  size_t n = x.size();
  if (n < 2) return 0.0;
  std::vector<size_t> bx = EquiWidthBins(x, bins);
  std::vector<size_t> by = EquiWidthBins(y, bins);
  std::vector<double> mx(bins, 0.0), my(bins, 0.0);
  for (size_t i = 0; i < n; ++i) {
    mx[bx[i]] += 1.0;
    my[by[i]] += 1.0;
  }
  double total = static_cast<double>(n);
  double hx = EntropyOfCounts(mx, total);
  double hy = EntropyOfCounts(my, total);
  if (hx <= 0.0 || hy <= 0.0) return 0.0;
  double mi = BinnedMutualInformation(x, y, bins);
  return std::clamp(mi / std::sqrt(hx * hy), 0.0, 1.0);
}

double CramersV(const std::vector<int32_t>& x, const std::vector<int32_t>& y) {
  FORESIGHT_CHECK(x.size() == y.size());
  // Re-map codes to dense indices over the rows where both are present.
  std::unordered_map<int32_t, size_t> xmap, ymap;
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0 || y[i] < 0) continue;
    auto [xi, x_inserted] = xmap.try_emplace(x[i], xmap.size());
    auto [yi, y_inserted] = ymap.try_emplace(y[i], ymap.size());
    pairs.emplace_back(xi->second, yi->second);
  }
  size_t r = xmap.size(), c = ymap.size();
  size_t n = pairs.size();
  if (n < 2 || r < 2 || c < 2) return 0.0;

  std::vector<double> joint(r * c, 0.0), row(r, 0.0), col(c, 0.0);
  for (auto [a, b] : pairs) {
    joint[a * c + b] += 1.0;
    row[a] += 1.0;
    col[b] += 1.0;
  }
  double total = static_cast<double>(n);
  double chi2 = 0.0;
  for (size_t a = 0; a < r; ++a) {
    for (size_t b = 0; b < c; ++b) {
      double expected = row[a] * col[b] / total;
      if (expected > 0.0) {
        double diff = joint[a * c + b] - expected;
        chi2 += diff * diff / expected;
      }
    }
  }
  double denom = total * static_cast<double>(std::min(r, c) - 1);
  if (denom <= 0.0) return 0.0;
  return std::clamp(std::sqrt(chi2 / denom), 0.0, 1.0);
}

double CorrelationRatio(const std::vector<double>& values,
                        const std::vector<int32_t>& codes) {
  FORESIGHT_CHECK(values.size() == codes.size());
  // std::map: the ss_between reduction below is order-sensitive in
  // floating point; ordered iteration keeps the score deterministic.
  std::map<int32_t, std::pair<double, double>> groups;  // sum, count
  double grand_sum = 0.0;
  double n = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (codes[i] < 0) continue;
    auto& [sum, count] = groups[codes[i]];
    sum += values[i];
    count += 1.0;
    grand_sum += values[i];
    n += 1.0;
  }
  if (n < 2.0 || groups.size() < 2) return 0.0;
  double grand_mean = grand_sum / n;
  double ss_between = 0.0;
  for (const auto& [code, sc] : groups) {
    double group_mean = sc.first / sc.second;
    double d = group_mean - grand_mean;
    ss_between += sc.second * d * d;
  }
  double ss_total = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (codes[i] < 0) continue;
    double d = values[i] - grand_mean;
    ss_total += d * d;
  }
  if (ss_total <= 0.0) return 0.0;
  return std::clamp(ss_between / ss_total, 0.0, 1.0);
}

}  // namespace foresight
