#ifndef FORESIGHT_STATS_HISTOGRAM_H_
#define FORESIGHT_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace foresight {

/// Equi-width histogram: the paper's visualization for the dispersion, skew,
/// heavy-tails and multimodality insights.
struct Histogram {
  /// `edges.size() == counts.size() + 1`; bin i covers
  /// [edges[i], edges[i+1]) with the last bin closed on the right.
  std::vector<double> edges;
  std::vector<uint64_t> counts;

  size_t num_bins() const { return counts.size(); }
  double bin_width() const {
    return edges.size() >= 2 ? edges[1] - edges[0] : 0.0;
  }
  uint64_t total() const;
  /// Index of the fullest bin (0 for an empty histogram).
  size_t ArgMax() const;
};

/// Builds an equi-width histogram with a fixed bin count. Degenerate inputs
/// (empty, or all values equal) produce a single bin.
Histogram BuildHistogram(const std::vector<double>& values, size_t num_bins);

/// Chooses a bin count by the Freedman–Diaconis rule (falling back to
/// Sturges when the IQR is zero), clamped to [1, max_bins].
size_t AutoBinCount(const std::vector<double>& values, size_t max_bins = 64);

/// BuildHistogram with AutoBinCount.
Histogram BuildAutoHistogram(const std::vector<double>& values,
                             size_t max_bins = 64);

}  // namespace foresight

#endif  // FORESIGHT_STATS_HISTOGRAM_H_
