#include "stats/frequency.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace foresight {

FrequencyTable::FrequencyTable(const CategoricalColumn& column) {
  std::vector<uint64_t> counts(column.cardinality(), 0);
  for (size_t i = 0; i < column.size(); ++i) {
    if (column.is_valid(i)) {
      ++counts[static_cast<size_t>(column.code(i))];
    }
  }
  std::vector<ValueCount> entries;
  entries.reserve(counts.size());
  for (size_t code = 0; code < counts.size(); ++code) {
    if (counts[code] > 0) {
      entries.push_back(
          {column.dictionary_value(static_cast<int32_t>(code)), counts[code]});
    }
  }
  BuildSorted(std::move(entries));
}

FrequencyTable::FrequencyTable(const std::vector<std::string>& values) {
  std::unordered_map<std::string, uint64_t> counts;
  for (const std::string& v : values) ++counts[v];
  std::vector<ValueCount> entries;
  entries.reserve(counts.size());
  // determinism-ok: BuildSorted imposes a total (count, value) order below.
  for (auto& [value, count] : counts) entries.push_back({value, count});
  BuildSorted(std::move(entries));
}

void FrequencyTable::BuildSorted(std::vector<ValueCount> counts) {
  std::sort(counts.begin(), counts.end(),
            [](const ValueCount& a, const ValueCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  entries_ = std::move(counts);
  total_ = 0;
  for (const ValueCount& e : entries_) total_ += e.count;
}

double FrequencyTable::RelFreq(size_t k) const {
  if (total_ == 0) return 0.0;
  k = std::min(k, entries_.size());
  uint64_t top = 0;
  for (size_t i = 0; i < k; ++i) top += entries_[i].count;
  return static_cast<double>(top) / static_cast<double>(total_);
}

std::vector<ValueCount> FrequencyTable::TopK(size_t k) const {
  k = std::min(k, entries_.size());
  return std::vector<ValueCount>(entries_.begin(),
                                 entries_.begin() + static_cast<ptrdiff_t>(k));
}

double FrequencyTable::Entropy() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  double n = static_cast<double>(total_);
  for (const ValueCount& e : entries_) {
    double p = static_cast<double>(e.count) / n;
    h -= p * std::log(p);
  }
  return h;
}

double FrequencyTable::NormalizedEntropy() const {
  if (entries_.size() <= 1) return 0.0;
  return Entropy() / std::log(static_cast<double>(entries_.size()));
}

}  // namespace foresight
