#ifndef FORESIGHT_STATS_MOMENTS_H_
#define FORESIGHT_STATS_MOMENTS_H_

#include <cstddef>
#include <vector>

namespace foresight {

/// Streaming central moments up to order four.
///
/// This is the paper's "fast and easy" path (§3): skewness and kurtosis "can
/// both be computed for numeric columns in a single pass by maintaining and
/// combining a few running sums". Uses the numerically stable one-pass update
/// (Pébay's formulas) and supports merging partial results, so moment
/// profiles compose across data partitions exactly.
///
/// Conventions follow the paper (§2.2): population variance
/// sigma^2 = n^-1 * sum (b_i - mu)^2, standardized skewness
/// gamma_1 = n^-1 * sum (b_i - mu)^3 / sigma^3, and (non-excess) kurtosis
/// Kurt = n^-1 * sum (b_i - mu)^4 / sigma^4.
class RunningMoments {
 public:
  RunningMoments() = default;

  /// Folds one observation into the summary.
  void Add(double x);

  /// Folds another summary into this one; equivalent to having Add-ed all of
  /// `other`'s observations.
  void Merge(const RunningMoments& other);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (n^-1). Zero for n < 1.
  double variance() const;
  double stddev() const;

  /// Standardized skewness gamma_1. NaN when undefined — empty input, zero
  /// variance (constant column), or a variance so small the standardization
  /// underflows. Callers rank on these values and must exclude non-finite
  /// results (a NaN score breaks the strict weak ordering the deterministic
  /// top-k relies on).
  double skewness() const;

  /// Non-excess kurtosis (Normal -> 3). NaN when undefined; see skewness().
  double kurtosis() const;

  /// Excess kurtosis (Normal -> 0). NaN when kurtosis() is undefined.
  double excess_kurtosis() const { return kurtosis() - 3.0; }

  /// |sigma / mu|; infinity when mean == 0 and sigma > 0, 0 for empty input.
  double coefficient_of_variation() const;

  double min() const { return min_; }
  double max() const { return max_; }

  /// Raw power sums, exposed for tests and serialization.
  double m2() const { return m2_; }
  double m3() const { return m3_; }
  double m4() const { return m4_; }

  /// Reconstructs a summary from its raw state (deserialization).
  static RunningMoments FromRaw(size_t n, double mean, double m2, double m3,
                                double m4, double min, double max);

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum (x - mean)^2
  double m3_ = 0.0;  // sum (x - mean)^3
  double m4_ = 0.0;  // sum (x - mean)^4
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Builds moments over a full vector.
RunningMoments MomentsOf(const std::vector<double>& values);

}  // namespace foresight

#endif  // FORESIGHT_STATS_MOMENTS_H_
