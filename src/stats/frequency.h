#ifndef FORESIGHT_STATS_FREQUENCY_H_
#define FORESIGHT_STATS_FREQUENCY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/column.h"

namespace foresight {

/// One distinct categorical value with its count.
struct ValueCount {
  std::string value;
  uint64_t count = 0;
};

/// Exact frequency distribution of a categorical column (nulls excluded),
/// sorted by descending count (ties broken by value for determinism).
///
/// Supports the Heterogeneous Frequencies insight (§2.2, insight 5): for a
/// configurable k, the strength metric is RelFreq(k, c), the total relative
/// frequency of the k most frequent elements of c.
class FrequencyTable {
 public:
  FrequencyTable() = default;
  explicit FrequencyTable(const CategoricalColumn& column);

  /// Builds directly from values (convenience for tests and sketches).
  explicit FrequencyTable(const std::vector<std::string>& values);

  /// Distinct values sorted by descending count.
  const std::vector<ValueCount>& entries() const { return entries_; }

  /// Number of non-null observations.
  uint64_t total_count() const { return total_; }

  /// Number of distinct values.
  size_t cardinality() const { return entries_.size(); }

  /// RelFreq(k): total relative frequency of the k heaviest hitters.
  /// Returns 0 when the table is empty; caps k at the cardinality.
  double RelFreq(size_t k) const;

  /// The k most frequent entries.
  std::vector<ValueCount> TopK(size_t k) const;

  /// Shannon entropy in nats over the empirical distribution.
  double Entropy() const;

  /// Entropy normalized by log(cardinality), in [0, 1]; 0 for cardinality
  /// <= 1 (fully concentrated). Low values mean high concentration.
  double NormalizedEntropy() const;

 private:
  void BuildSorted(std::vector<ValueCount> counts);

  std::vector<ValueCount> entries_;
  uint64_t total_ = 0;
};

}  // namespace foresight

#endif  // FORESIGHT_STATS_FREQUENCY_H_
