#include "stats/multimodality.h"

#include <algorithm>
#include <cmath>

#include "stats/moments.h"
#include "stats/quantiles.h"

namespace foresight {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
}

KdeResult ComputeKde(const std::vector<double>& values, size_t grid_size) {
  KdeResult result;
  if (values.empty() || grid_size < 2) return result;

  RunningMoments m = MomentsOf(values);
  double sigma = m.stddev();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double iqr = SortedQuantile(sorted, 0.75) - SortedQuantile(sorted, 0.25);
  double n = static_cast<double>(values.size());
  // Silverman's rule of thumb with the robust spread estimate.
  double spread = sigma;
  if (iqr > 0.0) spread = std::min(sigma, iqr / 1.349);
  if (spread <= 0.0) spread = sigma > 0.0 ? sigma : 1.0;
  double bandwidth = 0.9 * spread * std::pow(n, -0.2);
  if (bandwidth <= 0.0) bandwidth = 1.0;
  result.bandwidth = bandwidth;

  double lo = sorted.front() - bandwidth;
  double hi = sorted.back() + bandwidth;
  if (lo == hi) {
    lo -= 0.5;
    hi += 0.5;
  }
  double step = (hi - lo) / static_cast<double>(grid_size - 1);
  result.grid.resize(grid_size);
  result.density.assign(grid_size, 0.0);
  for (size_t g = 0; g < grid_size; ++g) {
    result.grid[g] = lo + step * static_cast<double>(g);
  }
  // Direct evaluation with a 4-bandwidth cutoff; the data is sorted, so for
  // each grid point only a contiguous window of points contributes.
  double cutoff = 4.0 * bandwidth;
  size_t window_begin = 0;
  for (size_t g = 0; g < grid_size; ++g) {
    double x = result.grid[g];
    while (window_begin < sorted.size() && sorted[window_begin] < x - cutoff) {
      ++window_begin;
    }
    double sum = 0.0;
    for (size_t i = window_begin; i < sorted.size() && sorted[i] <= x + cutoff;
         ++i) {
      double u = (x - sorted[i]) / bandwidth;
      sum += std::exp(-0.5 * u * u);
    }
    result.density[g] = sum * kInvSqrt2Pi / (n * bandwidth);
  }
  return result;
}

std::vector<Mode> FindModes(const KdeResult& kde, double min_prominence_frac) {
  std::vector<Mode> modes;
  const auto& d = kde.density;
  if (d.size() < 3) return modes;
  double global_max = *std::max_element(d.begin(), d.end());
  if (global_max <= 0.0) return modes;

  // Local maxima (plateau-tolerant): d rises into i and falls after i.
  std::vector<size_t> peak_indices;
  for (size_t i = 1; i + 1 < d.size(); ++i) {
    if (d[i] > d[i - 1] && d[i] >= d[i + 1]) {
      // Skip plateau duplicates: take the first index of a flat top.
      peak_indices.push_back(i);
      while (i + 1 < d.size() && d[i + 1] == d[i]) ++i;
    }
  }
  for (size_t idx : peak_indices) {
    // Prominence: height above the higher of the two deepest valleys
    // separating this peak from a higher peak (or the boundary).
    double left_min = d[idx];
    for (size_t j = idx; j-- > 0;) {
      left_min = std::min(left_min, d[j]);
      if (d[j] > d[idx]) break;
    }
    double right_min = d[idx];
    for (size_t j = idx + 1; j < d.size(); ++j) {
      right_min = std::min(right_min, d[j]);
      if (d[j] > d[idx]) break;
    }
    double prominence = d[idx] - std::max(left_min, right_min);
    if (prominence >= min_prominence_frac * global_max) {
      modes.push_back({kde.grid[idx], d[idx], prominence});
    }
  }
  std::sort(modes.begin(), modes.end(),
            [](const Mode& a, const Mode& b) { return a.density > b.density; });
  return modes;
}

double MultimodalityScore(const std::vector<double>& values) {
  if (values.size() < 8) return 0.0;
  KdeResult kde = ComputeKde(values);
  std::vector<Mode> modes = FindModes(kde);
  if (modes.size() < 2) return 0.0;
  double primary = modes.front().density;
  if (primary <= 0.0) return 0.0;
  double secondary_mass = 0.0;
  for (size_t i = 1; i < modes.size(); ++i) {
    secondary_mass += modes[i].prominence / primary;
  }
  return secondary_mass / (1.0 + secondary_mass);
}

double BimodalityCoefficient(const std::vector<double>& values) {
  if (values.size() < 4) return 0.0;
  RunningMoments m = MomentsOf(values);
  double kurt = m.kurtosis();
  // NaN kurtosis (constant column) compares false here and falls through to
  // the 0.0 return: a constant column is simply not bimodal.
  if (!(kurt > 0.0)) return 0.0;
  double skew = m.skewness();
  return (skew * skew + 1.0) / kurt;
}

}  // namespace foresight
