#include "stats/quantiles.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace foresight {

double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  FORESIGHT_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  double position = q * static_cast<double>(sorted.size() - 1);
  size_t lower = static_cast<size_t>(std::floor(position));
  size_t upper = static_cast<size_t>(std::ceil(position));
  double weight = position - static_cast<double>(lower);
  return sorted[lower] * (1.0 - weight) + sorted[upper] * weight;
}

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, q);
}

double Median(std::vector<double> values) {
  return ExactQuantile(std::move(values), 0.5);
}

double InterquartileRange(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return SortedQuantile(values, 0.75) - SortedQuantile(values, 0.25);
}

BoxPlotStats ComputeBoxPlotStats(const std::vector<double>& values) {
  BoxPlotStats stats;
  if (values.empty()) return stats;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();
  stats.q1 = SortedQuantile(sorted, 0.25);
  stats.median = SortedQuantile(sorted, 0.5);
  stats.q3 = SortedQuantile(sorted, 0.75);
  double iqr = stats.q3 - stats.q1;
  double lower_fence = stats.q1 - 1.5 * iqr;
  double upper_fence = stats.q3 + 1.5 * iqr;

  stats.lower_whisker = stats.q1;
  stats.upper_whisker = stats.q3;
  for (double x : sorted) {
    if (x >= lower_fence) {
      stats.lower_whisker = x;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= upper_fence) {
      stats.upper_whisker = *it;
      break;
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] < lower_fence || values[i] > upper_fence) {
      stats.outlier_indices.push_back(i);
    }
  }
  return stats;
}

}  // namespace foresight
