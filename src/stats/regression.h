#ifndef FORESIGHT_STATS_REGRESSION_H_
#define FORESIGHT_STATS_REGRESSION_H_

#include <cstddef>
#include <vector>

namespace foresight {

/// Ordinary-least-squares line y = slope * x + intercept, used to superimpose
/// the best-fit line on Linear Relationship scatter plots (§2.2, insight 6).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  double r_squared = 0.0;
  bool valid = false;
};

/// Fits by least squares; `valid` is false for fewer than 2 points or a
/// constant x.
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace foresight

#endif  // FORESIGHT_STATS_REGRESSION_H_
