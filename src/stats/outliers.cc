#include "stats/outliers.h"

#include <algorithm>
#include <cmath>

#include "stats/moments.h"
#include "stats/quantiles.h"

namespace foresight {

void OutlierDetector::FinalizeScore(const std::vector<double>& values,
                                    OutlierResult& result) {
  if (result.indices.empty()) {
    result.mean_standardized_distance = 0.0;
    return;
  }
  RunningMoments m = MomentsOf(values);
  double sigma = m.stddev();
  if (sigma <= 0.0) {
    result.mean_standardized_distance = 0.0;
    return;
  }
  double total = 0.0;
  for (size_t i : result.indices) {
    total += std::abs(values[i] - m.mean()) / sigma;
  }
  result.mean_standardized_distance =
      total / static_cast<double>(result.indices.size());
}

OutlierResult ZScoreDetector::Detect(const std::vector<double>& values) const {
  OutlierResult result;
  RunningMoments m = MomentsOf(values);
  double sigma = m.stddev();
  if (sigma <= 0.0) return result;
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::abs(values[i] - m.mean()) > threshold_ * sigma) {
      result.indices.push_back(i);
    }
  }
  FinalizeScore(values, result);
  return result;
}

OutlierResult IqrFenceDetector::Detect(const std::vector<double>& values) const {
  OutlierResult result;
  if (values.size() < 4) return result;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double q1 = SortedQuantile(sorted, 0.25);
  double q3 = SortedQuantile(sorted, 0.75);
  double iqr = q3 - q1;
  if (iqr <= 0.0) return result;
  double lo = q1 - k_ * iqr;
  double hi = q3 + k_ * iqr;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] < lo || values[i] > hi) result.indices.push_back(i);
  }
  FinalizeScore(values, result);
  return result;
}

OutlierResult MadDetector::Detect(const std::vector<double>& values) const {
  OutlierResult result;
  if (values.empty()) return result;
  double median = Median(values);
  std::vector<double> abs_dev(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    abs_dev[i] = std::abs(values[i] - median);
  }
  double mad = Median(abs_dev);
  if (mad <= 0.0) return result;
  for (size_t i = 0; i < values.size(); ++i) {
    double modified_z = 0.6745 * abs_dev[i] / mad;
    if (modified_z > threshold_) result.indices.push_back(i);
  }
  FinalizeScore(values, result);
  return result;
}

std::unique_ptr<OutlierDetector> MakeOutlierDetector(const std::string& name) {
  if (name == "zscore") return std::make_unique<ZScoreDetector>();
  if (name == "iqr") return std::make_unique<IqrFenceDetector>();
  if (name == "mad") return std::make_unique<MadDetector>();
  return nullptr;
}

}  // namespace foresight
