#ifndef FORESIGHT_STATS_OUTLIERS_H_
#define FORESIGHT_STATS_OUTLIERS_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace foresight {

/// Result of running an outlier detector over one numeric column.
struct OutlierResult {
  /// Indices (into the input vector) flagged as outliers.
  std::vector<size_t> indices;
  /// The paper's ranking metric (§2.2, insight 4): average standardized
  /// distance of the outliers from the mean, in standard deviations.
  /// Zero when no outliers are found or when sigma == 0.
  double mean_standardized_distance = 0.0;
};

/// User-configurable outlier detection (§2.2: "a user-configurable
/// outlier-detection algorithm"). Implementations are stateless and
/// thread-compatible.
class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  /// Name used for configuration and reporting, e.g. "zscore".
  virtual std::string name() const = 0;

  /// Flags outliers and computes the ranking metric.
  virtual OutlierResult Detect(const std::vector<double>& values) const = 0;

 protected:
  /// Fills `mean_standardized_distance` for an already-flagged index set.
  static void FinalizeScore(const std::vector<double>& values,
                            OutlierResult& result);
};

/// Flags |x - mu| > threshold * sigma. The classical parametric detector.
class ZScoreDetector final : public OutlierDetector {
 public:
  explicit ZScoreDetector(double threshold = 3.0) : threshold_(threshold) {}
  std::string name() const override { return "zscore"; }
  OutlierResult Detect(const std::vector<double>& values) const override;

 private:
  double threshold_;
};

/// Flags points beyond Tukey fences: [q1 - k*IQR, q3 + k*IQR].
class IqrFenceDetector final : public OutlierDetector {
 public:
  explicit IqrFenceDetector(double k = 1.5) : k_(k) {}
  std::string name() const override { return "iqr"; }
  OutlierResult Detect(const std::vector<double>& values) const override;

 private:
  double k_;
};

/// Flags points whose modified z-score 0.6745 * |x - median| / MAD exceeds
/// the threshold; robust to the outliers themselves.
class MadDetector final : public OutlierDetector {
 public:
  explicit MadDetector(double threshold = 3.5) : threshold_(threshold) {}
  std::string name() const override { return "mad"; }
  OutlierResult Detect(const std::vector<double>& values) const override;

 private:
  double threshold_;
};

/// Factory by name ("zscore", "iqr", "mad"); nullptr for unknown names.
std::unique_ptr<OutlierDetector> MakeOutlierDetector(const std::string& name);

}  // namespace foresight

#endif  // FORESIGHT_STATS_OUTLIERS_H_
