#ifndef FORESIGHT_STATS_CLUSTERING_H_
#define FORESIGHT_STATS_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace foresight {

/// 2-D point, the domain of the segmentation insight ("a strong clustering of
/// (x, y)-values according to z-values", §1).
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Result of Lloyd's k-means over 2-D points.
struct KMeansResult {
  std::vector<Point2> centroids;
  std::vector<int32_t> labels;       ///< Cluster id per input point.
  double inertia = 0.0;              ///< Sum of squared distances to centroid.
  size_t iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding; deterministic given `seed`.
/// `k` is clamped to the number of points.
KMeansResult KMeans(const std::vector<Point2>& points, size_t k,
                    uint64_t seed = 42, size_t max_iterations = 50);

/// Fraction of total (x, y) variance explained by the grouping (a 2-D
/// between/total sum-of-squares ratio), in [0, 1]. This is the segmentation
/// insight's ranking metric: 1 means groups are perfectly separated point
/// masses, 0 means group means coincide. Rows with negative labels skipped.
double SegmentationScore(const std::vector<Point2>& points,
                         const std::vector<int32_t>& labels);

/// Calinski–Harabasz index (between-group dispersion over within-group
/// dispersion, scaled by dof); larger is more separated. Unbounded; exposed
/// as a secondary metric.
double CalinskiHarabasz(const std::vector<Point2>& points,
                        const std::vector<int32_t>& labels);

}  // namespace foresight

#endif  // FORESIGHT_STATS_CLUSTERING_H_
