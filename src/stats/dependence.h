#ifndef FORESIGHT_STATS_DEPENDENCE_H_
#define FORESIGHT_STATS_DEPENDENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace foresight {

/// Measures of "general statistical dependence" (one of the paper's
/// additional insights), covering every attribute-type pairing:
///   numeric x numeric      -> binned normalized mutual information
///   categorical x categorical -> Cramér's V
///   numeric x categorical  -> correlation ratio eta^2

/// Mutual information (nats) between two equal-length numeric vectors after
/// equi-width binning into `bins` x `bins` cells.
double BinnedMutualInformation(const std::vector<double>& x,
                               const std::vector<double>& y, size_t bins = 16);

/// MI normalized by sqrt(Hx * Hy), in [0, 1]; 0 when either marginal entropy
/// vanishes.
double NormalizedMutualInformation(const std::vector<double>& x,
                                   const std::vector<double>& y,
                                   size_t bins = 16);

/// Cramér's V in [0, 1] over two code vectors (codes need not be dense;
/// negative codes mean missing and such rows are skipped pairwise).
double CramersV(const std::vector<int32_t>& x, const std::vector<int32_t>& y);

/// Correlation ratio eta^2 in [0, 1]: fraction of the variance of `values`
/// explained by the grouping `codes` (rows with negative codes are skipped).
double CorrelationRatio(const std::vector<double>& values,
                        const std::vector<int32_t>& codes);

}  // namespace foresight

#endif  // FORESIGHT_STATS_DEPENDENCE_H_
