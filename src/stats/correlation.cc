#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace foresight {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  FORESIGHT_CHECK(x.size() == y.size());
  size_t n = x.size();
  if (n < 2) return 0.0;
  double mean_x = std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
  double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mean_x;
    double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  double rho = sxy / std::sqrt(sxx * syy);
  return std::clamp(rho, -1.0, 1.0);
}

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  FORESIGHT_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(FractionalRanks(x), FractionalRanks(y));
}

namespace {

/// Counts inversions in `values` (by stable merge sort), i.e. discordant
/// swaps needed to sort; used by Kendall's tau.
uint64_t CountInversions(std::vector<double>& values, std::vector<double>& tmp,
                         size_t lo, size_t hi) {
  if (hi - lo < 2) return 0;
  size_t mid = lo + (hi - lo) / 2;
  uint64_t count = CountInversions(values, tmp, lo, mid) +
                   CountInversions(values, tmp, mid, hi);
  size_t a = lo, b = mid, out = lo;
  while (a < mid && b < hi) {
    if (values[b] < values[a]) {
      count += mid - a;
      tmp[out++] = values[b++];
    } else {
      tmp[out++] = values[a++];
    }
  }
  while (a < mid) tmp[out++] = values[a++];
  while (b < hi) tmp[out++] = values[b++];
  std::copy(tmp.begin() + static_cast<ptrdiff_t>(lo),
            tmp.begin() + static_cast<ptrdiff_t>(hi),
            values.begin() + static_cast<ptrdiff_t>(lo));
  return count;
}

/// Sum over tie groups of t*(t-1)/2 in a sorted vector.
uint64_t TiePairs(std::vector<double> sorted) {
  std::sort(sorted.begin(), sorted.end());
  uint64_t pairs = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    uint64_t t = j - i + 1;
    pairs += t * (t - 1) / 2;
    i = j + 1;
  }
  return pairs;
}

}  // namespace

double KendallTau(const std::vector<double>& x, const std::vector<double>& y) {
  FORESIGHT_CHECK(x.size() == y.size());
  size_t n = x.size();
  if (n < 2) return 0.0;

  // Sort indices by x, then y (so x-ties are ordered by y, making y-inversions
  // within an x-tie group count as neither concordant nor discordant).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  // Count joint ties (same x AND same y).
  uint64_t joint_tie_pairs = 0;
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && x[order[j + 1]] == x[order[i]] &&
             y[order[j + 1]] == y[order[i]]) {
        ++j;
      }
      uint64_t t = j - i + 1;
      joint_tie_pairs += t * (t - 1) / 2;
      i = j + 1;
    }
  }

  std::vector<double> y_sorted_by_x(n);
  for (size_t i = 0; i < n; ++i) y_sorted_by_x[i] = y[order[i]];
  std::vector<double> tmp(n);
  std::vector<double> work = y_sorted_by_x;
  uint64_t discordant = CountInversions(work, tmp, 0, n);

  uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t tie_x = TiePairs(x);
  uint64_t tie_y = TiePairs(y);
  // Pairs tied in x only were sorted by y, so they contributed no inversions.
  // Concordant + discordant pairs exclude all ties:
  double n0 = static_cast<double>(total_pairs);
  double n1 = static_cast<double>(tie_x);
  double n2 = static_cast<double>(tie_y);
  double n3 = static_cast<double>(joint_tie_pairs);
  double usable = n0 - n1 - n2 + n3;  // pairs untied in both
  if (usable <= 0.0) return 0.0;
  double concordant = usable - static_cast<double>(discordant);
  double numerator = concordant - static_cast<double>(discordant);
  double denominator = std::sqrt((n0 - n1) * (n0 - n2));
  if (denominator <= 0.0) return 0.0;
  return std::clamp(numerator / denominator, -1.0, 1.0);
}

PairedValues ExtractPairedValid(const NumericColumn& a,
                                const NumericColumn& b) {
  FORESIGHT_CHECK(a.size() == b.size());
  PairedValues out;
  out.x.reserve(a.valid_count());
  out.y.reserve(a.valid_count());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.is_valid(i) && b.is_valid(i)) {
      out.x.push_back(a.value(i));
      out.y.push_back(b.value(i));
    }
  }
  return out;
}

}  // namespace foresight
