#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/simd_clones.h"

namespace foresight {

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  FORESIGHT_CHECK(x.size() == y.size());
  size_t n = x.size();
  if (n < 2) return 0.0;
  double mean_x = std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
  double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double dx = x[i] - mean_x;
    double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  double rho = sxy / std::sqrt(sxx * syy);
  return std::clamp(rho, -1.0, 1.0);
}

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  size_t n = values.size();
  // Sort (value, original index) pairs rather than indices with an indirect
  // comparator: direct key compares avoid a dependent load per comparison.
  // Ranks depend only on value-equality groups, never on the order within a
  // tie group, so the result is bit-identical to the indirect form.
  std::vector<std::pair<double, size_t>> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) order.emplace_back(values[i], i);
  std::sort(order.begin(), order.end(),
            [](const std::pair<double, size_t>& a,
               const std::pair<double, size_t>& b) {
              return a.first < b.first;
            });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && order[j + 1].first == order[i].first) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k].second] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  FORESIGHT_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(FractionalRanks(x), FractionalRanks(y));
}

namespace {

/// Counts inversions in `values` (by stable merge sort), i.e. discordant
/// swaps needed to sort; used by Kendall's tau.
uint64_t CountInversions(std::vector<double>& values, std::vector<double>& tmp,
                         size_t lo, size_t hi) {
  if (hi - lo < 2) return 0;
  size_t mid = lo + (hi - lo) / 2;
  uint64_t count = CountInversions(values, tmp, lo, mid) +
                   CountInversions(values, tmp, mid, hi);
  size_t a = lo, b = mid, out = lo;
  while (a < mid && b < hi) {
    if (values[b] < values[a]) {
      count += mid - a;
      tmp[out++] = values[b++];
    } else {
      tmp[out++] = values[a++];
    }
  }
  while (a < mid) tmp[out++] = values[a++];
  while (b < hi) tmp[out++] = values[b++];
  std::copy(tmp.begin() + static_cast<ptrdiff_t>(lo),
            tmp.begin() + static_cast<ptrdiff_t>(hi),
            values.begin() + static_cast<ptrdiff_t>(lo));
  return count;
}

/// Sum over tie groups of t*(t-1)/2 in a sorted vector.
uint64_t TiePairs(std::vector<double> sorted) {
  std::sort(sorted.begin(), sorted.end());
  uint64_t pairs = 0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    uint64_t t = j - i + 1;
    pairs += t * (t - 1) / 2;
    i = j + 1;
  }
  return pairs;
}

}  // namespace

double KendallTau(const std::vector<double>& x, const std::vector<double>& y) {
  FORESIGHT_CHECK(x.size() == y.size());
  size_t n = x.size();
  if (n < 2) return 0.0;

  // Sort indices by x, then y (so x-ties are ordered by y, making y-inversions
  // within an x-tie group count as neither concordant nor discordant).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  // Count joint ties (same x AND same y).
  uint64_t joint_tie_pairs = 0;
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && x[order[j + 1]] == x[order[i]] &&
             y[order[j + 1]] == y[order[i]]) {
        ++j;
      }
      uint64_t t = j - i + 1;
      joint_tie_pairs += t * (t - 1) / 2;
      i = j + 1;
    }
  }

  std::vector<double> y_sorted_by_x(n);
  for (size_t i = 0; i < n; ++i) y_sorted_by_x[i] = y[order[i]];
  std::vector<double> tmp(n);
  std::vector<double> work = y_sorted_by_x;
  uint64_t discordant = CountInversions(work, tmp, 0, n);

  uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t tie_x = TiePairs(x);
  uint64_t tie_y = TiePairs(y);
  // Pairs tied in x only were sorted by y, so they contributed no inversions.
  // Concordant + discordant pairs exclude all ties:
  double n0 = static_cast<double>(total_pairs);
  double n1 = static_cast<double>(tie_x);
  double n2 = static_cast<double>(tie_y);
  double n3 = static_cast<double>(joint_tie_pairs);
  double usable = n0 - n1 - n2 + n3;  // pairs untied in both
  if (usable <= 0.0) return 0.0;
  double concordant = usable - static_cast<double>(discordant);
  double numerator = concordant - static_cast<double>(discordant);
  double denominator = std::sqrt((n0 - n1) * (n0 - n2));
  if (denominator <= 0.0) return 0.0;
  return std::clamp(numerator / denominator, -1.0, 1.0);
}

namespace {

// Blocked kernels for PairedMomentsBlocked. Each accumulator is split into
// four lanes; row j lands in lane j mod 4, and lanes combine in the fixed
// order ((l0 + l1) + (l2 + l3)) at the end. That lane partition is the
// rounding specification: the AVX2 clone vectorizes across lanes only, and
// AVX2 has no FMA, so both clones produce identical bits.

FORESIGHT_KERNEL_CLONES
void PairSumsKernel(const double* x, const double* y, size_t n,
                    double* sum_x, double* sum_y) {
  double sx0 = 0.0, sx1 = 0.0, sx2 = 0.0, sx3 = 0.0;
  double sy0 = 0.0, sy1 = 0.0, sy2 = 0.0, sy3 = 0.0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    sx0 += x[j];
    sx1 += x[j + 1];
    sx2 += x[j + 2];
    sx3 += x[j + 3];
    sy0 += y[j];
    sy1 += y[j + 1];
    sy2 += y[j + 2];
    sy3 += y[j + 3];
  }
  for (; j < n; ++j) {
    switch (j & 3) {
      case 0: sx0 += x[j]; sy0 += y[j]; break;
      case 1: sx1 += x[j]; sy1 += y[j]; break;
      case 2: sx2 += x[j]; sy2 += y[j]; break;
      default: sx3 += x[j]; sy3 += y[j]; break;
    }
  }
  *sum_x = (sx0 + sx1) + (sx2 + sx3);
  *sum_y = (sy0 + sy1) + (sy2 + sy3);
}

FORESIGHT_KERNEL_CLONES
void CenteredProductsKernel(const double* x, const double* y, size_t n,
                            double mean_x, double mean_y, double* sxy,
                            double* sxx, double* syy) {
  double xy0 = 0.0, xy1 = 0.0, xy2 = 0.0, xy3 = 0.0;
  double xx0 = 0.0, xx1 = 0.0, xx2 = 0.0, xx3 = 0.0;
  double yy0 = 0.0, yy1 = 0.0, yy2 = 0.0, yy3 = 0.0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const double dx0 = x[j] - mean_x, dy0 = y[j] - mean_y;
    const double dx1 = x[j + 1] - mean_x, dy1 = y[j + 1] - mean_y;
    const double dx2 = x[j + 2] - mean_x, dy2 = y[j + 2] - mean_y;
    const double dx3 = x[j + 3] - mean_x, dy3 = y[j + 3] - mean_y;
    xy0 += dx0 * dy0;
    xy1 += dx1 * dy1;
    xy2 += dx2 * dy2;
    xy3 += dx3 * dy3;
    xx0 += dx0 * dx0;
    xx1 += dx1 * dx1;
    xx2 += dx2 * dx2;
    xx3 += dx3 * dx3;
    yy0 += dy0 * dy0;
    yy1 += dy1 * dy1;
    yy2 += dy2 * dy2;
    yy3 += dy3 * dy3;
  }
  for (; j < n; ++j) {
    const double dx = x[j] - mean_x;
    const double dy = y[j] - mean_y;
    switch (j & 3) {
      case 0: xy0 += dx * dy; xx0 += dx * dx; yy0 += dy * dy; break;
      case 1: xy1 += dx * dy; xx1 += dx * dx; yy1 += dy * dy; break;
      case 2: xy2 += dx * dy; xx2 += dx * dx; yy2 += dy * dy; break;
      default: xy3 += dx * dy; xx3 += dx * dx; yy3 += dy * dy; break;
    }
  }
  *sxy = (xy0 + xy1) + (xy2 + xy3);
  *sxx = (xx0 + xx1) + (xx2 + xx3);
  *syy = (yy0 + yy1) + (yy2 + yy3);
}

}  // namespace

PairedMoments PairedMomentsBlocked(const NumericColumn& a,
                                   const NumericColumn& b) {
  FORESIGHT_CHECK(a.size() == b.size());
  // Per-worker scratch: the engine pool refines many pairs per thread, and
  // reusing the compaction buffers keeps the hot path allocation-free.
  static thread_local std::vector<double> xs_scratch;
  static thread_local std::vector<double> ys_scratch;

  const double* x = nullptr;
  const double* y = nullptr;
  size_t count = 0;
  if (a.null_count() == 0 && b.null_count() == 0) {
    // Dense fast path: kernels read the raw buffers directly.
    x = a.values().data();
    y = b.values().data();
    count = a.size();
  } else {
    xs_scratch.clear();
    ys_scratch.clear();
    xs_scratch.reserve(a.size());
    ys_scratch.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
      if (a.is_valid(i) && b.is_valid(i)) {
        xs_scratch.push_back(a.value(i));
        ys_scratch.push_back(b.value(i));
      }
    }
    x = xs_scratch.data();
    y = ys_scratch.data();
    count = xs_scratch.size();
  }

  PairedMoments moments;
  moments.count = count;
  if (count == 0) return moments;
  double sum_x = 0.0, sum_y = 0.0;
  PairSumsKernel(x, y, count, &sum_x, &sum_y);
  moments.mean_x = sum_x / static_cast<double>(count);
  moments.mean_y = sum_y / static_cast<double>(count);
  CenteredProductsKernel(x, y, count, moments.mean_x, moments.mean_y,
                         &moments.sxy, &moments.sxx, &moments.syy);
  return moments;
}

double PearsonPairedBlocked(const NumericColumn& a, const NumericColumn& b) {
  PairedMoments m = PairedMomentsBlocked(a, b);
  if (m.count < 2) return 0.0;
  if (m.sxx <= 0.0 || m.syy <= 0.0) return 0.0;
  return std::clamp(m.sxy / std::sqrt(m.sxx * m.syy), -1.0, 1.0);
}

PairedValues ExtractPairedValid(const NumericColumn& a,
                                const NumericColumn& b) {
  FORESIGHT_CHECK(a.size() == b.size());
  PairedValues out;
  out.x.reserve(a.valid_count());
  out.y.reserve(a.valid_count());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.is_valid(i) && b.is_valid(i)) {
      out.x.push_back(a.value(i));
      out.y.push_back(b.value(i));
    }
  }
  return out;
}

}  // namespace foresight
