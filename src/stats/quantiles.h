#ifndef FORESIGHT_STATS_QUANTILES_H_
#define FORESIGHT_STATS_QUANTILES_H_

#include <cstddef>
#include <vector>

namespace foresight {

/// Exact quantile of `values` at rank q in [0, 1], using linear interpolation
/// between order statistics (R type-7 / NumPy default). `values` need not be
/// sorted. Returns 0 for empty input.
double ExactQuantile(std::vector<double> values, double q);

/// Exact quantile over data already sorted ascending.
double SortedQuantile(const std::vector<double>& sorted, double q);

/// Median shortcut.
double Median(std::vector<double> values);

/// Interquartile range q3 - q1.
double InterquartileRange(std::vector<double> values);

/// Five-number summary plus Tukey whiskers and outliers, as drawn by a
/// box-and-whisker plot (the paper's visualization for the Outliers insight).
struct BoxPlotStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  /// Whisker ends: furthest points within 1.5 * IQR fences.
  double lower_whisker = 0.0;
  double upper_whisker = 0.0;
  /// Indices (into the input) of points beyond the fences.
  std::vector<size_t> outlier_indices;
};

BoxPlotStats ComputeBoxPlotStats(const std::vector<double>& values);

}  // namespace foresight

#endif  // FORESIGHT_STATS_QUANTILES_H_
