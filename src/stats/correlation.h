#ifndef FORESIGHT_STATS_CORRELATION_H_
#define FORESIGHT_STATS_CORRELATION_H_

#include <cstddef>
#include <vector>

#include "data/column.h"

namespace foresight {

/// Pearson product-moment correlation rho(x, y) (§2.2, insight 6). Inputs
/// must have equal length; returns 0 for fewer than 2 points or when either
/// side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Fractional ranks with ties averaged (the standard midrank convention).
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Spearman rank correlation: Pearson over midranks. Captures nonlinear
/// monotonic relationships (one of the paper's "additional insights", and the
/// second ranking metric the §4.1 scenario uses for correlation insights).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Kendall's tau-b, computed in O(n log n) via merge-sort inversion counting
/// with tie correction.
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

/// Extracts the rows where BOTH numeric columns are non-null, as paired
/// vectors (pairwise deletion, the convention used for all two-column
/// insight metrics).
struct PairedValues {
  std::vector<double> x;
  std::vector<double> y;
};
PairedValues ExtractPairedValid(const NumericColumn& a, const NumericColumn& b);

/// Two-pass moment sums over the pairwise-valid rows of two columns: count,
/// means, and the centered products sxy/sxx/syy that Pearson is assembled
/// from. Produced by PairedMomentsBlocked.
struct PairedMoments {
  size_t count = 0;
  double mean_x = 0.0;
  double mean_y = 0.0;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
};

/// Blocked two-pass paired moments. Columns with zero nulls feed the kernels
/// straight from their raw buffers (no compaction copy); otherwise the
/// pairwise-valid rows are compacted into thread-local scratch first. The
/// kernels accumulate into four independent lanes (row i to lane i mod 4),
/// which is what lets the AVX2 clone vectorize — the lane-partitioned
/// addition order IS the definition, so the scalar and AVX2 clones are
/// bit-identical (same no-FMA target_clones pattern as sketch ingestion).
/// Note the lane split means sums round differently from the sequential
/// PearsonCorrelation; both are exact two-pass algorithms, but they are
/// distinct rounding specifications.
PairedMoments PairedMomentsBlocked(const NumericColumn& a,
                                   const NumericColumn& b);

/// Exact Pearson over the pairwise-valid rows of two columns via
/// PairedMomentsBlocked — the SIMD refine kernel of the sketch-first prune
/// pipeline and the exact path of the linear-relationship class. Same edge
/// semantics as PearsonCorrelation: 0 for fewer than 2 paired rows or a
/// constant side, result clamped to [-1, 1].
double PearsonPairedBlocked(const NumericColumn& a, const NumericColumn& b);

}  // namespace foresight

#endif  // FORESIGHT_STATS_CORRELATION_H_
