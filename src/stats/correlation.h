#ifndef FORESIGHT_STATS_CORRELATION_H_
#define FORESIGHT_STATS_CORRELATION_H_

#include <cstddef>
#include <vector>

#include "data/column.h"

namespace foresight {

/// Pearson product-moment correlation rho(x, y) (§2.2, insight 6). Inputs
/// must have equal length; returns 0 for fewer than 2 points or when either
/// side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Fractional ranks with ties averaged (the standard midrank convention).
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Spearman rank correlation: Pearson over midranks. Captures nonlinear
/// monotonic relationships (one of the paper's "additional insights", and the
/// second ranking metric the §4.1 scenario uses for correlation insights).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Kendall's tau-b, computed in O(n log n) via merge-sort inversion counting
/// with tie correction.
double KendallTau(const std::vector<double>& x, const std::vector<double>& y);

/// Extracts the rows where BOTH numeric columns are non-null, as paired
/// vectors (pairwise deletion, the convention used for all two-column
/// insight metrics).
struct PairedValues {
  std::vector<double> x;
  std::vector<double> y;
};
PairedValues ExtractPairedValid(const NumericColumn& a, const NumericColumn& b);

}  // namespace foresight

#endif  // FORESIGHT_STATS_CORRELATION_H_
