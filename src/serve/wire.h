#ifndef FORESIGHT_SERVE_WIRE_H_
#define FORESIGHT_SERVE_WIRE_H_

#include <span>
#include <string>
#include <vector>

#include "core/dataset_registry.h"
#include "core/engine.h"
#include "core/query.h"
#include "util/json.h"
#include "util/status.h"

namespace foresight {

/// The wire API version these encoders speak. Responses carry it as
/// "api_version"; new shapes mean a new version constant and new paths, never
/// silent changes to v1.
inline constexpr int kWireApiVersion = 1;

/// Maps an engine Status to the HTTP status code of the v1 error response:
/// caller errors (InvalidArgument / ParseError / OutOfRange) → 400, unknown
/// class or metric (NotFound) → 404, FailedPrecondition / AlreadyExists →
/// 409, Unimplemented → 501, everything else → 500.
int HttpStatusForStatus(const Status& status);

/// v1 error body: {"api_version": 1, "error": {"code": "InvalidArgument",
/// "message": "..."}}.
JsonValue WireErrorV1(const Status& status);

/// The DETERMINISTIC half of a v1 query response: ranked insights plus the
/// run-count telemetry that is a pure function of (query, table, profile).
/// Serving-dependent fields (latency, cache hit/shard, trace) are encoded
/// separately by WireTelemetryV1 so clients — and the bench's bit-identity
/// gate — can compare `result` across transports byte-for-byte.
JsonValue WireResultV1(const InsightQueryResult& result);

/// The serving-dependent half: elapsed_ms, mode_used, cache_hit, cache_shard,
/// and prune-planner telemetry.
JsonValue WireTelemetryV1(const InsightQueryResult& result);

/// Full v1 response envelope for POST /v1/query:
/// {"api_version": 1, "result": WireResultV1, "telemetry": WireTelemetryV1}.
JsonValue WireQueryResponseV1(const InsightQueryResult& result);

/// Full v1 response envelope for POST /v1/query_batch:
/// {"api_version": 1, "results": [WireResultV1...],
///  "telemetry": [WireTelemetryV1...]} with positions matching the request.
JsonValue WireBatchResponseV1(std::span<const InsightQueryResult> results);

/// Deterministic v1 encoding of a pairwise overview (GET /v1/overview/...):
/// {"api_version": 1, "result": {class, metric, attributes, matrix (row-major
/// d*d), provenance, cell_provenance?}, "telemetry": {prune}}.
JsonValue WireOverviewResponseV1(const CorrelationOverview& overview);

/// v1 response for GET /v1/datasets:
/// {"api_version": 1,
///  "datasets": [{"id", "resident", "has_snapshot", "resident_bytes"}...]
///  (ascending id order),
///  "registry": {"resident_bytes", "memory_budget_bytes" (0 = unlimited),
///               "resident_datasets", "total_datasets"}}.
JsonValue WireDatasetsResponseV1(const std::vector<DatasetEntryInfo>& entries,
                                 const DatasetRegistryStats& stats,
                                 size_t memory_budget_bytes);

/// v1 response for POST /v1/append:
/// {"api_version": 1,
///  "append": {"dataset"? (only in registry mode), "rows_before",
///             "rows_appended", "num_rows", "delta_merged" (false = the
///             engine fell back to a full re-preprocess), "serving_epoch"}}.
JsonValue WireAppendResponseV1(const std::string& dataset,
                               const DatasetAppendOutcome& outcome);

/// Decodes the body of POST /v1/append into a delta table with exactly the
/// columns of `table` (names, types, order): {"rows": [[cell...]...]} where
/// each row array has one cell per column — number-or-null for numeric
/// columns, string-or-null for categorical. Strict: unknown envelope fields,
/// a missing/empty/oversized (> `max_rows`) rows array, row arrays of the
/// wrong width, and wrongly typed cells are all InvalidArgument.
StatusOr<DataTable> ParseAppendRowsV1(const JsonValue& json,
                                      const DataTable& table,
                                      size_t max_rows);

/// Decodes the body of POST /v1/query_batch:
/// {"queries": [InsightQuery::FromJson...]} — strict like FromJson (unknown
/// envelope fields rejected), and bounded: more than `max_queries` entries is
/// InvalidArgument (the admission queue bounds requests, this bounds the
/// work hidden inside one).
StatusOr<std::vector<InsightQuery>> ParseQueryBatchV1(const JsonValue& json,
                                                      size_t max_queries);

}  // namespace foresight

#endif  // FORESIGHT_SERVE_WIRE_H_
