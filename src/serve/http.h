#ifndef FORESIGHT_SERVE_HTTP_H_
#define FORESIGHT_SERVE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace foresight {

/// Hard limits on a single HTTP request. Exceeding a limit is a protocol
/// error (431 / 413), not a "need more bytes" state, so a hostile client
/// cannot make the server buffer unbounded input.
struct HttpLimits {
  size_t max_header_bytes = 8 * 1024;        ///< Request line + all headers.
  size_t max_body_bytes = 1024 * 1024;       ///< Content-Length ceiling.
};

/// A parsed HTTP/1.x request. Header names are lower-cased at parse time
/// (HTTP headers are case-insensitive); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   ///< Verbatim, e.g. "GET", "POST".
  std::string target;   ///< Request target, e.g. "/v1/query?x=1".
  std::string path;     ///< `target` with any "?query" suffix removed.
  int minor_version = 1;  ///< HTTP/1.<minor>; only 0 and 1 are accepted.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lower-case), or "" when absent.
  std::string_view Header(std::string_view name) const;

  /// Connection persistence per HTTP/1.1 defaults: 1.1 is keep-alive unless
  /// "Connection: close"; 1.0 is close unless "Connection: keep-alive".
  bool KeepAlive() const;
};

/// Outcome of one ParseRequest call over the connection's receive buffer.
enum class ParseState {
  kNeedMore,   ///< Prefix of a valid request; read more bytes and re-parse.
  kComplete,   ///< One full request parsed; `consumed` bytes were used.
  kError,      ///< Protocol violation; respond with `error_status` and close.
};

/// Result of ParseRequest. On kError, `error_status`/`error_reason` describe
/// the HTTP response to send before closing the connection.
struct ParseResult {
  ParseState state = ParseState::kNeedMore;
  size_t consumed = 0;          ///< Valid only for kComplete.
  int error_status = 0;         ///< Valid only for kError (e.g. 431).
  std::string error_reason;     ///< Human-readable parse failure.
};

/// Incremental HTTP/1.x request parser, stateless by design: callers
/// accumulate bytes in a buffer and re-parse from the start after every read
/// (kNeedMore costs a re-scan of at most max_header_bytes + max_body_bytes —
/// irrelevant next to query execution). On kComplete, `out` holds the request
/// and `consumed` tells the caller how much buffer to discard; leftover bytes
/// are the start of the next pipelined request.
///
/// Deliberate scope: HTTP/1.0 and 1.1 only; Content-Length bodies only
/// (Transfer-Encoding is rejected with 501 — chunked parsing is attack
/// surface the v1 API does not need); no multi-line header folding (431).
ParseResult ParseRequest(std::string_view buffer, const HttpLimits& limits,
                         HttpRequest* out);

/// The response side: status + reason, headers, body.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Canonical reason phrase for the status codes the server emits
/// ("Unknown" for anything else).
std::string_view HttpReasonPhrase(int status);

/// Serializes `response` as an HTTP/1.1 message. Content-Length and
/// Connection are always emitted (from `response.body` and `keep_alive`);
/// other headers come from `response.headers`.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

}  // namespace foresight

#endif  // FORESIGHT_SERVE_HTTP_H_
