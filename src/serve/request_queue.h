#ifndef FORESIGHT_SERVE_REQUEST_QUEUE_H_
#define FORESIGHT_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace foresight {

/// Bounded MPMC FIFO — the serve front-end's admission control. The event
/// loop TryPushes accepted work; when the queue is full the push fails
/// *immediately* and the caller answers 503 + Retry-After, so a request burst
/// is rejected at the door instead of growing an unbounded backlog (the
/// /healthz handler stays responsive because it never enters this queue).
/// Workers block in Pop; Close() wakes them all with std::nullopt.
template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Nonblocking push. False when the queue is at capacity or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND drained;
  /// std::nullopt means "shut down" (a closed queue still hands out the
  /// items already admitted — admitted requests get answers, not resets).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes all blocked Pop callers.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace foresight

#endif  // FORESIGHT_SERVE_REQUEST_QUEUE_H_
