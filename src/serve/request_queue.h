#ifndef FORESIGHT_SERVE_REQUEST_QUEUE_H_
#define FORESIGHT_SERVE_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/sync.h"

namespace foresight {

/// Bounded MPMC FIFO — the serve front-end's admission control. The event
/// loop TryPushes accepted work; when the queue is full the push fails
/// *immediately* and the caller answers 503 + Retry-After, so a request burst
/// is rejected at the door instead of growing an unbounded backlog (the
/// /healthz handler stays responsive because it never enters this queue).
/// Workers block in Pop; Close() wakes them all with std::nullopt.
///
/// Locking: one leaf mutex guards the deque and the closed flag; every
/// accessor (including size()) takes it, so no depth or state read ever
/// races a push/pop.
template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Nonblocking push. False when the queue is at capacity or closed.
  bool TryPush(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND drained;
  /// std::nullopt means "shut down" (a closed queue still hands out the
  /// items already admitted — admitted requests get answers, not resets).
  std::optional<T> Pop() {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) cv_.Wait(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes all blocked Pop callers.
  void Close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<T> items_ FORESIGHT_GUARDED_BY(mutex_);
  bool closed_ FORESIGHT_GUARDED_BY(mutex_) = false;
};

}  // namespace foresight

#endif  // FORESIGHT_SERVE_REQUEST_QUEUE_H_
