#ifndef FORESIGHT_SERVE_HTTP_CLIENT_H_
#define FORESIGHT_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/fd.h"
#include "util/status.h"

namespace foresight {

/// One parsed HTTP response.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  ///< Lower-cased.
  std::string body;

  /// First value of `name` (lower-case), or "" when absent.
  std::string_view Header(std::string_view name) const;
};

/// Minimal blocking HTTP/1.1 client over one keep-alive connection to
/// 127.0.0.1 — the shared transport for the serve tests, the load bench, and
/// the CI smoke probe (so they all exercise real sockets, not an in-process
/// shortcut). Intentionally not a general client: loopback only,
/// Content-Length bodies only, single-threaded use.
class HttpClient {
 public:
  HttpClient() = default;

  /// Opens (or reopens) the connection.
  Status Connect(uint16_t port);

  bool connected() const { return fd_.valid(); }
  void Disconnect() { fd_.Reset(); }

  /// Sends one request and blocks for the response. `body` non-empty implies
  /// a Content-Length header. IOError if the server closed mid-exchange; the
  /// caller may Connect() again (the server closes on protocol errors and
  /// idle timeouts by design).
  StatusOr<ClientResponse> Request(
      std::string_view method, std::string_view target,
      std::string_view body = {},
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Sends raw bytes verbatim (hostile-input tests: truncated requests,
  /// pipelining, slowloris drips).
  Status SendRaw(std::string_view bytes);

  /// Reads one response off the wire (for use after SendRaw).
  StatusOr<ClientResponse> ReadResponse();

 private:
  UniqueFd fd_;
  std::string buffer_;  ///< Bytes read but not yet consumed by a response.
};

}  // namespace foresight

#endif  // FORESIGHT_SERVE_HTTP_CLIENT_H_
