#include "serve/wire.h"

namespace foresight {

namespace {

const char* ProvenanceName(Provenance provenance) {
  return provenance == Provenance::kSketch ? "sketch" : "exact";
}

JsonValue StringArray(const std::vector<std::string>& values) {
  JsonValue array = JsonValue::Array();
  for (const std::string& value : values) array.Append(value);
  return array;
}

JsonValue InsightJson(const Insight& insight) {
  JsonValue json = JsonValue::Object();
  json.Set("class", insight.class_name);
  json.Set("metric", insight.metric_name);
  JsonValue indices = JsonValue::Array();
  for (size_t index : insight.attributes.indices) indices.Append(index);
  json.Set("attribute_indices", std::move(indices));
  json.Set("attributes", StringArray(insight.attribute_names));
  json.Set("score", insight.score);
  json.Set("raw_value", insight.raw_value);
  json.Set("provenance", ProvenanceName(insight.provenance));
  json.Set("description", insight.description);
  return json;
}

JsonValue PruneJson(const PruneTelemetry& prune) {
  JsonValue json = JsonValue::Object();
  json.Set("used", prune.used);
  json.Set("pairs_total", prune.pairs_total);
  json.Set("pairs_estimated", prune.pairs_estimated);
  json.Set("pairs_escalated", prune.pairs_escalated);
  json.Set("pairs_pruned", prune.pairs_pruned);
  json.Set("pairs_refined", prune.pairs_refined);
  json.Set("pairs_unsafe", prune.pairs_unsafe);
  return json;
}

JsonValue Envelope() {
  JsonValue json = JsonValue::Object();
  json.Set("api_version", kWireApiVersion);
  return json;
}

}  // namespace

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kInternal:
    case StatusCode::kIOError:
      return 500;
  }
  return 500;
}

JsonValue WireErrorV1(const Status& status) {
  JsonValue json = Envelope();
  JsonValue error = JsonValue::Object();
  error.Set("code", StatusCodeToString(status.code()));
  error.Set("message", status.message());
  json.Set("error", std::move(error));
  return json;
}

JsonValue WireResultV1(const InsightQueryResult& result) {
  JsonValue json = JsonValue::Object();
  JsonValue insights = JsonValue::Array();
  for (const Insight& insight : result.insights) {
    insights.Append(InsightJson(insight));
  }
  json.Set("insights", std::move(insights));
  json.Set("candidates_evaluated", result.candidates_evaluated);
  json.Set("undefined_excluded", result.undefined_excluded);
  return json;
}

JsonValue WireTelemetryV1(const InsightQueryResult& result) {
  JsonValue json = JsonValue::Object();
  json.Set("elapsed_ms", result.elapsed_ms);
  json.Set("mode_used", ExecutionModeName(result.mode_used));
  json.Set("cache_hit", result.cache_hit);
  json.Set("cache_shard", result.cache_shard);
  json.Set("prune", PruneJson(result.prune));
  return json;
}

JsonValue WireQueryResponseV1(const InsightQueryResult& result) {
  JsonValue json = Envelope();
  json.Set("result", WireResultV1(result));
  json.Set("telemetry", WireTelemetryV1(result));
  return json;
}

JsonValue WireBatchResponseV1(std::span<const InsightQueryResult> results) {
  JsonValue json = Envelope();
  JsonValue encoded = JsonValue::Array();
  JsonValue telemetry = JsonValue::Array();
  for (const InsightQueryResult& result : results) {
    encoded.Append(WireResultV1(result));
    telemetry.Append(WireTelemetryV1(result));
  }
  json.Set("results", std::move(encoded));
  json.Set("telemetry", std::move(telemetry));
  return json;
}

JsonValue WireOverviewResponseV1(const CorrelationOverview& overview) {
  JsonValue result = JsonValue::Object();
  result.Set("class", overview.class_name);
  result.Set("metric", overview.metric_name);
  result.Set("attributes", StringArray(overview.attribute_names));
  JsonValue matrix = JsonValue::Array();
  for (double value : overview.matrix) matrix.Append(value);
  result.Set("matrix", std::move(matrix));
  result.Set("provenance", ProvenanceName(overview.provenance));
  if (!overview.cell_provenance.empty()) {
    JsonValue cells = JsonValue::Array();
    for (Provenance cell : overview.cell_provenance) {
      cells.Append(ProvenanceName(cell));
    }
    result.Set("cell_provenance", std::move(cells));
  }

  JsonValue json = Envelope();
  json.Set("result", std::move(result));
  JsonValue telemetry = JsonValue::Object();
  telemetry.Set("prune", PruneJson(overview.prune));
  json.Set("telemetry", std::move(telemetry));
  return json;
}

JsonValue WireDatasetsResponseV1(const std::vector<DatasetEntryInfo>& entries,
                                 const DatasetRegistryStats& stats,
                                 size_t memory_budget_bytes) {
  JsonValue json = Envelope();
  JsonValue datasets = JsonValue::Array();
  for (const DatasetEntryInfo& entry : entries) {
    JsonValue row = JsonValue::Object();
    row.Set("id", entry.id);
    row.Set("resident", entry.resident);
    row.Set("has_snapshot", entry.has_snapshot);
    row.Set("resident_bytes", entry.resident_bytes);
    datasets.Append(std::move(row));
  }
  json.Set("datasets", std::move(datasets));
  JsonValue registry = JsonValue::Object();
  registry.Set("resident_bytes", stats.resident_bytes);
  registry.Set("memory_budget_bytes", memory_budget_bytes);
  registry.Set("resident_datasets", stats.resident_datasets);
  registry.Set("total_datasets", stats.total_datasets);
  json.Set("registry", std::move(registry));
  return json;
}

JsonValue WireAppendResponseV1(const std::string& dataset,
                               const DatasetAppendOutcome& outcome) {
  JsonValue json = Envelope();
  JsonValue append = JsonValue::Object();
  if (!dataset.empty()) append.Set("dataset", dataset);
  append.Set("rows_before", outcome.rows_before);
  append.Set("rows_appended", outcome.rows_appended);
  append.Set("num_rows", outcome.num_rows);
  append.Set("delta_merged", outcome.delta_merged);
  append.Set("serving_epoch", outcome.serving_epoch);
  json.Set("append", std::move(append));
  return json;
}

StatusOr<DataTable> ParseAppendRowsV1(const JsonValue& json,
                                      const DataTable& table,
                                      size_t max_rows) {
  if (!json.is_object()) {
    return Status::InvalidArgument("append request must be a JSON object");
  }
  const JsonValue* rows = nullptr;
  for (const auto& [key, value] : json.items()) {
    if (key == "rows") {
      rows = &value;
    } else {
      return Status::InvalidArgument("unknown append field '" + key + "'");
    }
  }
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument("append request needs a 'rows' array");
  }
  if (rows->size() == 0) {
    return Status::InvalidArgument("'rows' must not be empty");
  }
  if (rows->size() > max_rows) {
    return Status::InvalidArgument("append exceeds the limit of " +
                                   std::to_string(max_rows) + " rows");
  }

  const size_t width = table.num_columns();
  std::vector<std::unique_ptr<Column>> columns;
  columns.reserve(width);
  for (size_t c = 0; c < width; ++c) {
    if (table.column(c).type() == ColumnType::kNumeric) {
      columns.push_back(std::make_unique<NumericColumn>());
    } else {
      columns.push_back(std::make_unique<CategoricalColumn>());
    }
  }

  for (size_t i = 0; i < rows->size(); ++i) {
    const JsonValue& row = rows->at(i);
    if (!row.is_array() || row.size() != width) {
      return Status::InvalidArgument(
          "rows[" + std::to_string(i) + "] must be an array of " +
          std::to_string(width) + " cells (one per column)");
    }
    for (size_t c = 0; c < width; ++c) {
      const JsonValue& cell = row.at(c);
      if (table.column(c).type() == ColumnType::kNumeric) {
        auto& column = static_cast<NumericColumn&>(*columns[c]);
        if (cell.is_null()) {
          column.AppendNull();
        } else if (cell.is_number()) {
          column.Append(cell.as_number());
        } else {
          return Status::InvalidArgument(
              "rows[" + std::to_string(i) + "][" + std::to_string(c) +
              "] ('" + table.column_name(c) + "'): expected number or null");
        }
      } else {
        auto& column = static_cast<CategoricalColumn&>(*columns[c]);
        if (cell.is_null()) {
          column.AppendNull();
        } else if (cell.is_string()) {
          column.Append(cell.as_string());
        } else {
          return Status::InvalidArgument(
              "rows[" + std::to_string(i) + "][" + std::to_string(c) +
              "] ('" + table.column_name(c) + "'): expected string or null");
        }
      }
    }
  }

  DataTable delta;
  for (size_t c = 0; c < width; ++c) {
    FORESIGHT_RETURN_IF_ERROR(
        delta.AddColumn(table.column_name(c), std::move(columns[c])));
  }
  return delta;
}

StatusOr<std::vector<InsightQuery>> ParseQueryBatchV1(const JsonValue& json,
                                                      size_t max_queries) {
  if (!json.is_object()) {
    return Status::InvalidArgument("batch request must be a JSON object");
  }
  const JsonValue* queries = nullptr;
  for (const auto& [key, value] : json.items()) {
    if (key == "queries") {
      queries = &value;
    } else {
      return Status::InvalidArgument("unknown batch field '" + key + "'");
    }
  }
  if (queries == nullptr || !queries->is_array()) {
    return Status::InvalidArgument("batch request needs a 'queries' array");
  }
  if (queries->size() > max_queries) {
    return Status::InvalidArgument(
        "batch exceeds the limit of " + std::to_string(max_queries) +
        " queries");
  }
  std::vector<InsightQuery> parsed;
  parsed.reserve(queries->size());
  for (size_t i = 0; i < queries->size(); ++i) {
    StatusOr<InsightQuery> query = InsightQuery::FromJson(queries->at(i));
    if (!query.ok()) {
      return Status::InvalidArgument("queries[" + std::to_string(i) +
                                     "]: " + query.status().message());
    }
    parsed.push_back(std::move(query).value());
  }
  return parsed;
}

}  // namespace foresight
