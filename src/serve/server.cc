#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "serve/wire.h"
#include "util/logging.h"
#include "util/timer.h"

namespace foresight {

namespace {

/// epoll user-data slots for the two non-connection descriptors; connection
/// ids start above them.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

constexpr std::string_view kJsonContentType = "application/json";
constexpr std::string_view kOverviewPrefix = "/v1/overview/";

HttpResponse JsonResponse(int status, const JsonValue& body) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("Content-Type", std::string(kJsonContentType));
  response.body = body.Dump();
  response.body += '\n';
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusForStatus(status), WireErrorV1(status));
}

/// 503 body; "Unavailable" is not a StatusCode (no engine path produces it),
/// so the overload response is built directly.
HttpResponse OverloadedResponse() {
  JsonValue body = JsonValue::Object();
  body.Set("api_version", kWireApiVersion);
  JsonValue error = JsonValue::Object();
  error.Set("code", "Unavailable");
  error.Set("message", "admission queue full; retry with backoff");
  body.Set("error", std::move(error));
  HttpResponse response = JsonResponse(503, body);
  response.headers.emplace_back("Retry-After", "1");
  return response;
}

HttpResponse MethodNotAllowed(const std::string& allow) {
  JsonValue body = JsonValue::Object();
  body.Set("api_version", kWireApiVersion);
  JsonValue error = JsonValue::Object();
  error.Set("code", "InvalidArgument");
  error.Set("message", "method not allowed; use " + allow);
  body.Set("error", std::move(error));
  HttpResponse response = JsonResponse(405, body);
  response.headers.emplace_back("Allow", allow);
  return response;
}

/// Splits the "?key=value&..." suffix of a request target. Values are used
/// verbatim (no percent-decoding): v1 parameter values are metric names,
/// mode names, dataset ids, and numbers, none of which need escaping.
/// `dataset` receives the dataset selector ("" when absent).
Status ParseOverviewParams(std::string_view target,
                           PairwiseOverviewOptions* options,
                           std::string* dataset) {
  const size_t question = target.find('?');
  if (question == std::string_view::npos) return Status::OK();
  std::string_view params = target.substr(question + 1);
  while (!params.empty()) {
    const size_t amp = params.find('&');
    std::string_view pair = params.substr(0, amp);
    params = amp == std::string_view::npos ? std::string_view{}
                                           : params.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("malformed query parameter '" +
                                     std::string(pair) + "'");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string value(pair.substr(eq + 1));
    if (key == "metric") {
      options->metric = value;
    } else if (key == "mode") {
      FORESIGHT_ASSIGN_OR_RETURN(options->mode, ParseExecutionMode(value));
    } else if (key == "refine_min_score") {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size()) {
        return Status::InvalidArgument("refine_min_score must be a number");
      }
      options->refine_min_score = parsed;
    } else if (key == "dataset") {
      *dataset = value;
    } else {
      return Status::InvalidArgument("unknown query parameter '" +
                                     std::string(key) + "'");
    }
  }
  return Status::OK();
}

/// Pulls the optional "dataset" selector out of a parsed POST body, so the
/// remaining document can go through the strict unknown-field-rejecting
/// query codecs untouched. Returns "" when absent.
StatusOr<std::string> ExtractDatasetField(JsonValue* body) {
  const JsonValue* dataset = body->Get("dataset");
  if (dataset == nullptr) return std::string();
  if (!dataset->is_string()) {
    return Status::InvalidArgument("'dataset' must be a string");
  }
  std::string id = dataset->as_string();
  body->Remove("dataset");
  return id;
}

}  // namespace

HttpServer::HttpServer(const QuerySession& session, HttpServerOptions options)
    : session_(&session),
      options_(options),
      metrics_(session.engine().metrics()),
      queue_(options.queue_capacity) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server is already running");
  }
  const auto& appendable = options_.appendable;
  const bool any_appendable = appendable.table != nullptr ||
                              appendable.engine != nullptr ||
                              appendable.mutex != nullptr;
  const bool all_appendable = appendable.table != nullptr &&
                              appendable.engine != nullptr &&
                              appendable.mutex != nullptr;
  if (any_appendable && !all_appendable) {
    return Status::InvalidArgument(
        "HttpServerOptions::appendable needs table, engine, and mutex all "
        "set (or none)");
  }
  FORESIGHT_ASSIGN_OR_RETURN(
      listen_fd_,
      CreateListenSocket(options_.port, options_.backlog, &port_));
  epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_.Reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_fd_.valid()) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }

  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &event) <
      0) {
    return Status::IOError(std::string("epoll_ctl(listen): ") +
                           std::strerror(errno));
  }
  event.events = EPOLLIN;
  event.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &event) <
      0) {
    return Status::IOError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }

  if (metrics_ != nullptr) {
    accepted_total_ = &metrics_->counter("serve.connections_accepted_total");
    rejected_total_ = &metrics_->counter("serve.queue_rejections_total");
    idle_timeouts_total_ = &metrics_->counter("serve.idle_timeouts_total");
    responses_2xx_ = &metrics_->counter("serve.responses_2xx_total");
    responses_4xx_ = &metrics_->counter("serve.responses_4xx_total");
    responses_5xx_ = &metrics_->counter("serve.responses_5xx_total");
    connections_open_ = &metrics_->gauge("serve.connections_open");
    queue_depth_ = &metrics_->gauge("serve.queue_depth");
    query_latency_ms_ = &metrics_->histogram("serve.query_latency_ms");
    batch_latency_ms_ = &metrics_->histogram("serve.query_batch_latency_ms");
    overview_latency_ms_ = &metrics_->histogram("serve.overview_latency_ms");
    append_latency_ms_ = &metrics_->histogram("serve.append_latency_ms");
  }

  ThreadPool* pool = session_->engine().thread_pool();
  use_engine_pool_ = pool != nullptr && pool->num_threads() > 1;
  if (!use_engine_pool_) {
    // Single-worker engine: no pool workers exist to Submit to, so one
    // dedicated thread drains the admission queue.
    drain_thread_ = std::thread([this] {
      for (;;) {
        std::optional<Job> job = queue_.Pop();
        if (!job.has_value()) return;
        RunJob(std::move(*job));
      }
    });
  }

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  queue_.Close();
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (drain_thread_.joinable()) drain_thread_.join();
  // Engine-pool drain ticks that found the queue already empty may still be
  // scheduled; they touch this object, so wait them out before returning.
  while (pool_ticks_active_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
}

void HttpServer::WakeLoop() {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
}

void HttpServer::LoopThread() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool listening = true;

  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) {
      if (listening) {
        ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(),
                    nullptr);
        listen_fd_.Reset();
        listening = false;
      }
      MutexLock lock(completions_mutex_);
      if (jobs_active_.load(std::memory_order_acquire) == 0 &&
          completions_.empty()) {
        break;
      }
    }

    int timeout_ms = -1;
    if (stopping_.load(std::memory_order_acquire)) {
      // Workers decrement jobs_active_ after their wakeup write, so poll
      // briefly instead of trusting the eventfd alone during the drain.
      timeout_ms = 20;
    } else if (options_.idle_timeout_ms > 0) {
      timeout_ms = static_cast<int>(
          std::clamp<uint32_t>(options_.idle_timeout_ms / 4, 10, 1000));
    }

    const int ready =
        ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    for (int i = 0; i < std::max(ready, 0); ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptNew();
      } else if (tag == kWakeTag) {
        uint64_t drained = 0;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
      } else {
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConnection(tag);
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) HandleWritable(tag);
        if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
          HandleReadable(tag);
        }
      }
    }

    DrainCompletions();
    SweepIdle();
  }

  connections_.clear();
  if (connections_open_ != nullptr) connections_open_->Set(0.0);
}

void HttpServer::AcceptNew() {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EMFILE etc.: drop the event; the socket stays acceptable.
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const uint64_t conn_id = next_conn_id_++;
    Connection& conn = connections_[conn_id];
    conn.fd.Reset(fd);
    // determinism-ok: idle-timeout bookkeeping, never feeds query results
    conn.last_activity = std::chrono::steady_clock::now();

    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    event.data.u64 = conn_id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &event) < 0) {
      connections_.erase(conn_id);
      continue;
    }
    if (accepted_total_ != nullptr) accepted_total_->Increment();
    if (connections_open_ != nullptr) {
      connections_open_->Set(static_cast<double>(connections_.size()));
    }
  }
}

void HttpServer::HandleReadable(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  char chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in_buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // Peer closed.
      CloseConnection(conn_id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }

  // determinism-ok: idle-timeout bookkeeping, never feeds query results
  conn.last_activity = std::chrono::steady_clock::now();

  if (conn.close_after_write) {
    // Already answering a fatal error; discard anything else the peer sends.
    conn.in_buffer.clear();
    return;
  }

  // Bound the per-connection buffer: one max-size request plus one pipelined
  // successor. A client pushing more while a request executes is overrunning
  // the one-in-flight window and gets cut off, keeping per-connection memory
  // O(limits) no matter what the peer sends.
  const size_t buffer_cap =
      2 * (options_.limits.max_header_bytes + options_.limits.max_body_bytes);
  if (conn.in_buffer.size() > buffer_cap) {
    HttpResponse response = JsonResponse(
        413, WireErrorV1(Status::InvalidArgument(
                 "pipelined request backlog exceeds buffer limit")));
    CountResponse(413);
    conn.in_buffer.clear();
    SendResponse(conn_id, response, /*keep_alive=*/false);
    return;
  }

  ParseAndDispatch(conn_id);
}

void HttpServer::ParseAndDispatch(uint64_t conn_id) {
  for (;;) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (conn.busy || conn.close_after_write || conn.in_buffer.empty()) return;

    HttpRequest request;
    ParseResult parsed =
        ParseRequest(conn.in_buffer, options_.limits, &request);
    switch (parsed.state) {
      case ParseState::kNeedMore:
        return;
      case ParseState::kError: {
        HttpResponse response =
            JsonResponse(parsed.error_status,
                         WireErrorV1(Status::InvalidArgument(
                             parsed.error_reason)));
        CountResponse(parsed.error_status);
        conn.in_buffer.clear();
        SendResponse(conn_id, response, /*keep_alive=*/false);
        return;
      }
      case ParseState::kComplete:
        conn.in_buffer.erase(0, parsed.consumed);
        Dispatch(conn_id, std::move(request));
        break;  // Loop: serve pipelined successors unless now busy.
    }
  }
}

void HttpServer::Dispatch(uint64_t conn_id, HttpRequest request) {
  const bool keep_alive = request.KeepAlive();
  const std::string& path = request.path;

  // Liveness and metrics answer inline on the loop thread: they must keep
  // responding while the admission queue is full and workers are saturated.
  if (path == "/healthz") {
    if (request.method != "GET") {
      CountResponse(405);
      SendResponse(conn_id, MethodNotAllowed("GET"), keep_alive);
      return;
    }
    JsonValue body = JsonValue::Object();
    body.Set("status", "ok");
    body.Set("api_version", kWireApiVersion);
    CountResponse(200);
    SendResponse(conn_id, JsonResponse(200, body), keep_alive);
    return;
  }
  if (path == "/metrics") {
    if (request.method != "GET") {
      CountResponse(405);
      SendResponse(conn_id, MethodNotAllowed("GET"), keep_alive);
      return;
    }
    HttpResponse response;
    response.headers.emplace_back("Content-Type",
                                  "text/plain; version=0.0.4");
    response.body = metrics_ != nullptr
                        ? session_->engine().DumpMetrics(
                              MetricsFormat::kPrometheus)
                        : "# metrics collection is disabled\n";
    CountResponse(200);
    SendResponse(conn_id, response, keep_alive);
    return;
  }
  if (path == "/v1/datasets") {
    // Inline like /metrics: a short registry-mutex listing, never a load.
    if (request.method != "GET") {
      CountResponse(405);
      SendResponse(conn_id, MethodNotAllowed("GET"), keep_alive);
      return;
    }
    if (options_.registry == nullptr) {
      CountResponse(404);
      SendResponse(conn_id,
                   ErrorResponse(Status::NotFound(
                       "multi-dataset serving is not enabled (start with "
                       "--datasets)")),
                   keep_alive);
      return;
    }
    const JsonValue body = WireDatasetsResponseV1(
        options_.registry->ListEntries(), options_.registry->stats(),
        options_.registry->options().memory_budget_bytes);
    CountResponse(200);
    SendResponse(conn_id, JsonResponse(200, body), keep_alive);
    return;
  }

  const bool is_query = path == "/v1/query";
  const bool is_batch = path == "/v1/query_batch";
  const bool is_append = path == "/v1/append";
  const bool is_overview =
      path.size() > kOverviewPrefix.size() &&
      std::string_view(path).substr(0, kOverviewPrefix.size()) ==
          kOverviewPrefix;
  if (!is_query && !is_batch && !is_append && !is_overview) {
    CountResponse(404);
    SendResponse(conn_id,
                 ErrorResponse(Status::NotFound("unknown path '" + path +
                                                "' (see /v1/query, "
                                                "/v1/query_batch, "
                                                "/v1/append, "
                                                "/v1/overview/<class>)")),
                 keep_alive);
    return;
  }
  const std::string allow = is_overview ? "GET" : "POST";
  if (request.method != allow) {
    CountResponse(405);
    SendResponse(conn_id, MethodNotAllowed(allow), keep_alive);
    return;
  }

  // API work is admitted to the bounded queue or rejected NOW — never
  // buffered beyond capacity.
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  jobs_active_.fetch_add(1, std::memory_order_acq_rel);
  Job job;
  job.conn_id = conn_id;
  job.request = std::move(request);
  job.keep_alive = keep_alive;
  if (!queue_.TryPush(std::move(job))) {
    jobs_active_.fetch_sub(1, std::memory_order_acq_rel);
    if (rejected_total_ != nullptr) rejected_total_->Increment();
    CountResponse(503);
    SendResponse(conn_id, OverloadedResponse(), keep_alive);
    return;
  }
  it->second.busy = true;
  if (queue_depth_ != nullptr) {
    queue_depth_->Set(static_cast<double>(queue_.size()));
  }
  if (use_engine_pool_) {
    pool_ticks_active_.fetch_add(1, std::memory_order_acq_rel);
    const bool submitted = session_->engine().thread_pool()->Submit([this] {
      std::optional<Job> next = queue_.Pop();
      if (next.has_value()) RunJob(std::move(*next));
      pool_ticks_active_.fetch_sub(1, std::memory_order_acq_rel);
    });
    if (!submitted) {
      // The pool lost its workers after Start (not a supported reconfig);
      // degrade to inline execution rather than strand the job.
      pool_ticks_active_.fetch_sub(1, std::memory_order_acq_rel);
      std::optional<Job> next = queue_.Pop();
      if (next.has_value()) RunJob(std::move(*next));
    }
  }
}

StatusOr<const QuerySession*> HttpServer::ResolveSession(
    const std::string& dataset,
    std::shared_ptr<const ResidentDataset>* pin) const {
  if (dataset.empty()) return session_;
  if (options_.registry == nullptr) {
    return Status::InvalidArgument(
        "this server has no dataset registry; omit 'dataset' or start with "
        "--datasets");
  }
  // A cold dataset loads here, inline on the worker thread: the latency is
  // charged to this request (and registry.load_ms), not the event loop.
  FORESIGHT_ASSIGN_OR_RETURN(*pin, options_.registry->Acquire(dataset));
  return &(*pin)->session();
}

SharedMutex* HttpServer::DataGuard(
    const std::string& dataset,
    const std::shared_ptr<const ResidentDataset>& pin) const {
  if (!dataset.empty() && pin != nullptr) return &pin->data_mutex();
  if (dataset.empty()) return options_.appendable.mutex;
  return nullptr;
}

HttpResponse HttpServer::HandleAppend(const JsonValue& body,
                                      const std::string& dataset) const {
  if (dataset.empty()) {
    // Default dataset. Parsing only reads the schema (column names/types),
    // which never changes after startup, so it runs before the exclusive
    // lock; only the actual table/profile mutation excludes queries.
    if (options_.appendable.table == nullptr) {
      return ErrorResponse(Status::FailedPrecondition(
          "this server's default dataset is read-only; pass 'dataset' to "
          "append to a registry dataset, or start with --appendable"));
    }
    StatusOr<DataTable> delta = ParseAppendRowsV1(
        body, *options_.appendable.table, options_.max_append_rows);
    if (!delta.ok()) return ErrorResponse(delta.status());
    DatasetAppendOutcome outcome;
    {
      WriterLock lock(*options_.appendable.mutex);
      StatusOr<AppendStats> stats = options_.appendable.engine->AppendPartition(
          *options_.appendable.table, *delta);
      if (!stats.ok()) return ErrorResponse(stats.status());
      outcome.rows_before = stats->rows_before;
      outcome.rows_appended = stats->rows_appended;
      outcome.num_rows = stats->num_rows;
      outcome.delta_merged = stats->delta_merged;
      outcome.serving_epoch = options_.appendable.engine->serving_epoch();
    }
    return JsonResponse(200, WireAppendResponseV1("", outcome));
  }
  if (options_.registry == nullptr) {
    return ErrorResponse(Status::InvalidArgument(
        "this server has no dataset registry; omit 'dataset' or start with "
        "--datasets"));
  }
  // The pin is only for parsing against the dataset's schema (stable after
  // load); DatasetRegistry::Append re-acquires and takes the dataset's own
  // data_mutex() exclusively for the mutation.
  StatusOr<std::shared_ptr<const ResidentDataset>> pin =
      options_.registry->Acquire(dataset);
  if (!pin.ok()) return ErrorResponse(pin.status());
  StatusOr<DataTable> delta =
      ParseAppendRowsV1(body, (*pin)->table(), options_.max_append_rows);
  if (!delta.ok()) return ErrorResponse(delta.status());
  StatusOr<DatasetAppendOutcome> outcome =
      options_.registry->Append(dataset, *delta);
  if (!outcome.ok()) return ErrorResponse(outcome.status());
  return JsonResponse(200, WireAppendResponseV1(dataset, *outcome));
}

HttpResponse HttpServer::HandleApi(const HttpRequest& request) const {
  // Keeps a registry dataset alive for the duration of this request even if
  // it is evicted concurrently.
  std::shared_ptr<const ResidentDataset> pin;
  if (request.path == "/v1/query") {
    StatusOr<JsonValue> body = JsonValue::Parse(request.body);
    if (!body.ok()) return ErrorResponse(body.status());
    StatusOr<std::string> dataset = ExtractDatasetField(&*body);
    if (!dataset.ok()) return ErrorResponse(dataset.status());
    StatusOr<const QuerySession*> session = ResolveSession(*dataset, &pin);
    if (!session.ok()) return ErrorResponse(session.status());
    StatusOr<InsightQuery> query = InsightQuery::FromJson(*body);
    if (!query.ok()) return ErrorResponse(query.status());
    // Shared side of the append/query exclusion: appends to this dataset
    // wait until in-flight queries finish (and vice versa).
    ReaderLockMaybe guard(DataGuard(*dataset, pin));
    StatusOr<InsightQueryResult> result = (*session)->Execute(*query);
    if (!result.ok()) return ErrorResponse(result.status());
    return JsonResponse(200, WireQueryResponseV1(*result));
  }
  if (request.path == "/v1/query_batch") {
    StatusOr<JsonValue> body = JsonValue::Parse(request.body);
    if (!body.ok()) return ErrorResponse(body.status());
    StatusOr<std::string> dataset = ExtractDatasetField(&*body);
    if (!dataset.ok()) return ErrorResponse(dataset.status());
    StatusOr<const QuerySession*> session = ResolveSession(*dataset, &pin);
    if (!session.ok()) return ErrorResponse(session.status());
    StatusOr<std::vector<InsightQuery>> queries =
        ParseQueryBatchV1(*body, options_.max_batch_queries);
    if (!queries.ok()) return ErrorResponse(queries.status());
    ReaderLockMaybe guard(DataGuard(*dataset, pin));
    StatusOr<std::vector<InsightQueryResult>> results =
        (*session)->ExecuteBatch(*queries);
    if (!results.ok()) return ErrorResponse(results.status());
    return JsonResponse(200, WireBatchResponseV1(*results));
  }
  if (request.path == "/v1/append") {
    StatusOr<JsonValue> body = JsonValue::Parse(request.body);
    if (!body.ok()) return ErrorResponse(body.status());
    StatusOr<std::string> dataset = ExtractDatasetField(&*body);
    if (!dataset.ok()) return ErrorResponse(dataset.status());
    return HandleAppend(*body, *dataset);
  }
  // /v1/overview/<class>
  const std::string class_name(
      std::string_view(request.path).substr(kOverviewPrefix.size()));
  PairwiseOverviewOptions overview_options;
  std::string dataset;
  Status params =
      ParseOverviewParams(request.target, &overview_options, &dataset);
  if (!params.ok()) return ErrorResponse(params);
  StatusOr<const QuerySession*> session = ResolveSession(dataset, &pin);
  if (!session.ok()) return ErrorResponse(session.status());
  ReaderLockMaybe guard(DataGuard(dataset, pin));
  StatusOr<CorrelationOverview> overview =
      (*session)->engine().ComputePairwiseOverview(class_name,
                                                   overview_options);
  if (!overview.ok()) return ErrorResponse(overview.status());
  return JsonResponse(200, WireOverviewResponseV1(*overview));
}

void HttpServer::RunJob(Job job) {
  // determinism-ok: route-latency observability, never feeds query results
  WallTimer timer{kDeferredStart};
  LatencyHistogram* route_latency = nullptr;
  if (metrics_ != nullptr) {
    route_latency = job.request.path == "/v1/query"
                        ? query_latency_ms_
                        : job.request.path == "/v1/query_batch"
                              ? batch_latency_ms_
                              : job.request.path == "/v1/append"
                                    ? append_latency_ms_
                                    : overview_latency_ms_;
    timer.Restart();
  }
  if (queue_depth_ != nullptr) {
    queue_depth_->Set(static_cast<double>(queue_.size()));
  }

  Completion completion;
  completion.conn_id = job.conn_id;
  completion.keep_alive = job.keep_alive;
  completion.response = HandleApi(job.request);

  if (route_latency != nullptr) route_latency->Record(timer.ElapsedMillis());
  CountResponse(completion.response.status);
  {
    MutexLock lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  WakeLoop();
  // LAST access to the server: the shutdown path joins on observing zero,
  // so nothing may touch members after this decrement.
  jobs_active_.fetch_sub(1, std::memory_order_release);
}

void HttpServer::DrainCompletions() {
  for (;;) {
    Completion completion;
    {
      MutexLock lock(completions_mutex_);
      if (completions_.empty()) return;
      completion = std::move(completions_.front());
      completions_.pop_front();
    }
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // Peer left; drop the response.
    it->second.busy = false;
    SendResponse(completion.conn_id, completion.response,
                 completion.keep_alive);
    // The connection may have pipelined its next request while this one ran.
    ParseAndDispatch(completion.conn_id);
  }
}

void HttpServer::SendResponse(uint64_t conn_id, const HttpResponse& response,
                              bool keep_alive) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  conn.out_buffer += SerializeResponse(response, keep_alive);
  if (!keep_alive) conn.close_after_write = true;
  HandleWritable(conn_id);
}

void HttpServer::HandleWritable(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  while (!conn.out_buffer.empty()) {
    const ssize_t n = ::send(conn.fd.get(), conn.out_buffer.data(),
                             conn.out_buffer.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_buffer.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }

  const bool want_write = !conn.out_buffer.empty();
  if (want_write != conn.want_write) {
    conn.want_write = want_write;
    UpdateEpoll(conn_id);
  }
  if (!want_write && conn.close_after_write) CloseConnection(conn_id);
}

void HttpServer::UpdateEpoll(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  epoll_event event{};
  event.events = EPOLLIN | EPOLLRDHUP | EPOLLET |
                 (it->second.want_write ? EPOLLOUT : 0u);
  event.data.u64 = conn_id;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, it->second.fd.get(), &event);
}

void HttpServer::SweepIdle() {
  if (options_.idle_timeout_ms == 0) return;
  // determinism-ok: idle-timeout bookkeeping, never feeds query results
  const auto now = std::chrono::steady_clock::now();
  const auto timeout = std::chrono::milliseconds(options_.idle_timeout_ms);
  // Collect first: sending 408 / closing mutates connections_ mid-iteration.
  std::vector<std::pair<uint64_t, bool>> expired;  // (conn_id, had_partial)
  for (const auto& [conn_id, conn] : connections_) {
    if (conn.busy) continue;  // A request is executing, not idle.
    if (now - conn.last_activity < timeout) continue;
    expired.emplace_back(conn_id, !conn.in_buffer.empty());
  }
  for (const auto& [conn_id, had_partial] : expired) {
    if (idle_timeouts_total_ != nullptr) idle_timeouts_total_->Increment();
    if (had_partial) {
      // Slowloris: a request trickled in but never completed. Tell the peer
      // before closing.
      CountResponse(408);
      SendResponse(conn_id,
                   JsonResponse(408, WireErrorV1(Status::InvalidArgument(
                                         "request incomplete after idle "
                                         "timeout"))),
                   /*keep_alive=*/false);
    } else {
      CloseConnection(conn_id);
    }
  }
}

void HttpServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second.fd.get(), nullptr);
  connections_.erase(it);
  if (connections_open_ != nullptr) {
    connections_open_->Set(static_cast<double>(connections_.size()));
  }
}

void HttpServer::CountResponse(int status) const {
  Counter* counter = status >= 500  ? responses_5xx_
                     : status >= 400 ? responses_4xx_
                                     : responses_2xx_;
  if (counter != nullptr) counter->Increment();
}

}  // namespace foresight
