#ifndef FORESIGHT_SERVE_SERVER_H_
#define FORESIGHT_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/dataset_registry.h"
#include "core/session.h"
#include "serve/http.h"
#include "serve/request_queue.h"
#include "util/fd.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/sync.h"

namespace foresight {

/// Knobs for an HttpServer.
struct HttpServerOptions {
  /// TCP port on 127.0.0.1; 0 picks a kernel-assigned ephemeral port (read it
  /// back via HttpServer::port()).
  uint16_t port = 0;
  /// listen(2) backlog.
  int backlog = 128;
  /// Admission-queue capacity: requests already parsed but not yet picked up
  /// by a worker. A full queue answers 503 + Retry-After immediately — the
  /// server's memory for queued work is bounded by
  /// queue_capacity * max_body_bytes no matter how fast clients push.
  size_t queue_capacity = 64;
  /// Connections idle longer than this are reaped by the event loop: a
  /// half-sent request (slowloris) gets 408 and a close; an idle keep-alive
  /// connection is closed silently. 0 disables the sweep.
  uint32_t idle_timeout_ms = 10'000;
  /// Upper bound on queries inside one /v1/query_batch body.
  size_t max_batch_queries = 1024;
  /// HTTP parse limits (header/body byte ceilings).
  HttpLimits limits;
  /// Multi-dataset serving (optional; must outlive the server). When set,
  /// GET /v1/datasets lists the registry, and /v1/query, /v1/query_batch and
  /// /v1/overview/{class} accept an optional `dataset` selector (body field
  /// for POSTs, query parameter for overviews) routed through
  /// DatasetRegistry::Acquire — the first query to a cold dataset loads its
  /// snapshot inline on the worker thread, so that latency lands in the
  /// request (and the registry.load_ms histogram), never on the event loop.
  /// Requests without a `dataset` keep hitting the default session, so the
  /// v1 wire contract is unchanged for existing clients.
  DatasetRegistry* registry = nullptr;
  /// The default dataset's mutable half, enabling POST /v1/append without a
  /// `dataset` selector. All three pointers (or none) must be set, must
  /// refer to the same table/engine the default session serves, and must
  /// outlive the server. `mutex` orders appends (exclusive) against query
  /// execution (shared) on the default dataset; when unset the default
  /// dataset is read-only and queries skip the lock entirely.
  struct AppendableDataset {
    DataTable* table = nullptr;
    InsightEngine* engine = nullptr;
    SharedMutex* mutex = nullptr;
  };
  AppendableDataset appendable;
  /// Upper bound on rows inside one /v1/append body.
  size_t max_append_rows = 100'000;
};

/// The v1 HTTP/JSON front-end over a QuerySession (DESIGN.md "Serve
/// front-end"). One edge-triggered epoll event loop owns every socket and all
/// reads/writes; parsed API requests are admitted to a bounded RequestQueue
/// and executed on the engine's ThreadPool (or, for a single-worker engine,
/// one dedicated drain thread), so slow query execution never blocks accepts,
/// health checks, or metric scrapes:
///
///   POST /v1/query        InsightQuery::FromJson -> QuerySession::Execute
///   POST /v1/query_batch  ParseQueryBatchV1 -> QuerySession::ExecuteBatch
///   GET  /v1/overview/C   ComputePairwiseOverview(C) (+ metric/mode/
///                         refine_min_score query parameters)
///   POST /v1/append       ParseAppendRowsV1 -> incremental ingestion
///                         (registry datasets, or the default dataset when
///                         options.appendable is set)
///   GET  /v1/datasets     registry listing (inline; multi-dataset mode)
///   GET  /healthz         liveness (answered inline on the loop thread,
///                         even while the queue is rejecting with 503)
///   GET  /metrics         Prometheus text exposition (inline)
///
/// With options.registry set, the three API routes additionally accept an
/// optional `dataset` selector (see HttpServerOptions::registry).
///
/// Responses use the versioned envelope from serve/wire.h. The session (and
/// its engine) must outlive the server. Start() spawns the loop; Stop()
/// drains admitted requests, answers them, then closes every connection —
/// also run by the destructor if still running.
class HttpServer {
 public:
  HttpServer(const QuerySession& session, HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the event loop. Fails on bind errors.
  Status Start();

  /// Stops accepting, drains admitted requests (they get real answers, not
  /// resets), then shuts the loop down. Idempotent.
  void Stop();

  /// The bound port (valid after Start(); 0 before).
  uint16_t port() const { return port_; }

 private:
  struct Connection {
    UniqueFd fd;
    std::string in_buffer;    ///< Unparsed request bytes.
    std::string out_buffer;   ///< Serialized response bytes not yet written.
    bool want_write = false;  ///< EPOLLOUT is armed.
    bool close_after_write = false;
    /// A request from this connection is queued or executing; further
    /// pipelined requests wait in in_buffer until the response is written
    /// (one in-flight request per connection keeps responses ordered).
    bool busy = false;
    std::chrono::steady_clock::time_point last_activity;
  };

  /// A parsed API request traveling loop -> worker -> loop.
  struct Job {
    uint64_t conn_id = 0;
    HttpRequest request;
    bool keep_alive = true;
  };

  /// A finished response traveling worker -> loop (via completions_).
  struct Completion {
    uint64_t conn_id = 0;
    HttpResponse response;
    bool keep_alive = true;
  };

  void LoopThread();
  void AcceptNew();
  void HandleReadable(uint64_t conn_id);
  void HandleWritable(uint64_t conn_id);
  /// Parses as many pipelined requests from in_buffer as allowed (stops when
  /// busy) and dispatches them.
  void ParseAndDispatch(uint64_t conn_id);
  void Dispatch(uint64_t conn_id, HttpRequest request);
  /// Runs one admitted job on a worker thread and posts its Completion.
  void RunJob(Job job);
  HttpResponse HandleApi(const HttpRequest& request) const;
  /// The session a request addresses: the default session when `dataset` is
  /// empty, otherwise the registry-acquired dataset's (loaded on demand;
  /// *pin keeps it alive across concurrent eviction for this request).
  StatusOr<const QuerySession*> ResolveSession(
      const std::string& dataset,
      std::shared_ptr<const ResidentDataset>* pin) const;
  /// The append/query exclusion lock guarding the dataset a request
  /// resolved to: the pinned registry dataset's data_mutex(), the
  /// appendable default dataset's mutex, or null (read-only default
  /// dataset — no lock needed, nothing can mutate it).
  SharedMutex* DataGuard(
      const std::string& dataset,
      const std::shared_ptr<const ResidentDataset>& pin) const;
  /// POST /v1/append (runs on a worker thread like queries).
  HttpResponse HandleAppend(const JsonValue& body,
                            const std::string& dataset) const;
  /// Queues `response` on the connection and flushes what the socket takes.
  void SendResponse(uint64_t conn_id, const HttpResponse& response,
                    bool keep_alive);
  void DrainCompletions();
  void SweepIdle();
  void CloseConnection(uint64_t conn_id);
  void UpdateEpoll(uint64_t conn_id);
  void WakeLoop();
  void CountResponse(int status) const;

  const QuerySession* session_;
  HttpServerOptions options_;
  std::shared_ptr<MetricsRegistry> metrics_;  ///< Engine registry (may be null).

  UniqueFd listen_fd_;
  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;  ///< eventfd: workers wake the loop for completions.
  uint16_t port_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Connections keyed by a monotonic id (never a raw fd: the kernel reuses
  /// fd numbers immediately, and a stale Completion must not land on a new
  /// connection that happens to share the fd). std::map, not unordered_map —
  /// the idle sweep iterates it, and tools/lint_determinism.py bans
  /// iteration over unordered containers. Loop-thread-only.
  std::map<uint64_t, Connection> connections_;
  /// Starts above the listen/wake epoll tags (0 and 1) so a connection id
  /// can never alias them.
  uint64_t next_conn_id_ = 2;

  RequestQueue<Job> queue_;
  /// Jobs admitted but whose Completion the loop has not consumed yet; the
  /// shutdown drain waits for this to hit zero.
  std::atomic<size_t> jobs_active_{0};
  /// True when the engine pool has spawned workers to Submit to; otherwise
  /// drain_thread_ does the popping.
  bool use_engine_pool_ = false;
  /// Engine-pool drain ticks submitted but not yet finished; Stop() waits
  /// for zero so no pool task outlives the server it captures.
  std::atomic<size_t> pool_ticks_active_{0};
  std::thread drain_thread_;

  /// Worker -> loop handoff. Leaf lock (lowest tier of the hierarchy in
  /// util/sync.h): held only across deque pushes/pops, never while calling
  /// into the engine or the metrics registry.
  mutable Mutex completions_mutex_;
  std::deque<Completion> completions_ FORESIGHT_GUARDED_BY(completions_mutex_);

  // Metric handles, resolved once at Start (null when metrics are disabled).
  Counter* accepted_total_ = nullptr;
  Counter* rejected_total_ = nullptr;
  Counter* idle_timeouts_total_ = nullptr;
  Counter* responses_2xx_ = nullptr;
  Counter* responses_4xx_ = nullptr;
  Counter* responses_5xx_ = nullptr;
  Gauge* connections_open_ = nullptr;
  Gauge* queue_depth_ = nullptr;
  LatencyHistogram* query_latency_ms_ = nullptr;
  LatencyHistogram* batch_latency_ms_ = nullptr;
  LatencyHistogram* overview_latency_ms_ = nullptr;
  LatencyHistogram* append_latency_ms_ = nullptr;
};

}  // namespace foresight

#endif  // FORESIGHT_SERVE_SERVER_H_
