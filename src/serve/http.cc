#include "serve/http.h"

#include <algorithm>
#include <cctype>

namespace foresight {

namespace {

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimOws(std::string_view value) {
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  return value;
}

bool IsTokenChar(char c) {
  // RFC 9110 token characters (header names, methods).
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
  return kExtra.find(c) != std::string_view::npos;
}

ParseResult Error(int status, std::string reason) {
  ParseResult result;
  result.state = ParseState::kError;
  result.error_status = status;
  result.error_reason = std::move(reason);
  return result;
}

ParseResult NeedMore() { return ParseResult{}; }

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

bool HttpRequest::KeepAlive() const {
  const std::string connection = ToLowerAscii(Header("connection"));
  if (minor_version >= 1) return connection != "close";
  return connection == "keep-alive";
}

ParseResult ParseRequest(std::string_view buffer, const HttpLimits& limits,
                         HttpRequest* out) {
  // Locate the end of the header block first; everything before it must fit
  // in max_header_bytes or the request is rejected outright (431) — this is
  // the slowloris bound: a client drip-feeding headers can tie up at most
  // max_header_bytes of memory before hitting either this limit or the
  // server's idle timeout.
  const size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (buffer.size() > limits.max_header_bytes) {
      return Error(431, "header block exceeds limit");
    }
    return NeedMore();
  }
  if (header_end + 4 > limits.max_header_bytes) {
    return Error(431, "header block exceeds limit");
  }

  HttpRequest request;

  // Request line: METHOD SP TARGET SP HTTP/1.x
  const size_t line_end = buffer.find("\r\n");
  std::string_view line = buffer.substr(0, line_end);
  const size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos || method_end == 0) {
    return Error(400, "malformed request line");
  }
  std::string_view method = line.substr(0, method_end);
  if (!std::all_of(method.begin(), method.end(), IsTokenChar)) {
    return Error(400, "malformed method");
  }
  const size_t target_end = line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos || target_end == method_end + 1) {
    return Error(400, "malformed request line");
  }
  std::string_view target = line.substr(method_end + 1,
                                        target_end - method_end - 1);
  std::string_view version = line.substr(target_end + 1);
  if (version == "HTTP/1.1") {
    request.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    request.minor_version = 0;
  } else {
    return Error(505, "unsupported HTTP version");
  }
  request.method = std::string(method);
  request.target = std::string(target);
  request.path = std::string(target.substr(0, target.find('?')));

  // Header fields.
  size_t cursor = line_end + 2;
  while (cursor < header_end) {
    const size_t eol = buffer.find("\r\n", cursor);
    std::string_view field = buffer.substr(cursor, eol - cursor);
    cursor = eol + 2;
    if (field.front() == ' ' || field.front() == '\t') {
      return Error(431, "obsolete header folding is not supported");
    }
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Error(400, "malformed header field");
    }
    std::string_view name = field.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), IsTokenChar)) {
      return Error(400, "malformed header name");
    }
    request.headers.emplace_back(ToLowerAscii(name),
                                 std::string(TrimOws(field.substr(colon + 1))));
  }

  // Body framing: Content-Length only.
  if (!request.Header("transfer-encoding").empty()) {
    return Error(501, "Transfer-Encoding is not supported");
  }
  size_t content_length = 0;
  const std::string_view length_header = request.Header("content-length");
  if (!length_header.empty()) {
    if (length_header.size() > 18 ||
        !std::all_of(length_header.begin(), length_header.end(),
                     [](unsigned char c) { return std::isdigit(c); })) {
      return Error(400, "malformed Content-Length");
    }
    for (char c : length_header) {
      content_length = content_length * 10 + static_cast<size_t>(c - '0');
    }
    if (content_length > limits.max_body_bytes) {
      return Error(413, "request body exceeds limit");
    }
  }

  const size_t body_begin = header_end + 4;
  if (buffer.size() - body_begin < content_length) return NeedMore();
  request.body = std::string(buffer.substr(body_begin, content_length));

  *out = std::move(request);
  ParseResult result;
  result.state = ParseState::kComplete;
  result.consumed = body_begin + content_length;
  return result;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += HttpReasonPhrase(response.status);
  out += "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace foresight
