#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace foresight {

namespace {

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view TrimOws(std::string_view value) {
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  return value;
}

}  // namespace

std::string_view ClientResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

Status HttpClient::Connect(uint16_t port) {
  Disconnect();
  buffer_.clear();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError(std::string("connect: ") + std::strerror(errno));
  }
  fd_ = std::move(fd);
  return Status::OK();
}

Status HttpClient::SendRaw(std::string_view bytes) {
  if (!fd_.valid()) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Disconnect();
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<ClientResponse> HttpClient::ReadResponse() {
  if (!fd_.valid()) return Status::FailedPrecondition("not connected");
  for (;;) {
    // Try to parse a complete response out of the buffer.
    const size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      std::string_view view(buffer_);
      const size_t line_end = view.find("\r\n");
      std::string_view line = view.substr(0, line_end);
      // "HTTP/1.1 200 OK"
      if (line.size() < 12 || line.substr(0, 5) != "HTTP/") {
        Disconnect();
        return Status::ParseError("malformed status line");
      }
      ClientResponse response;
      response.status = (line[9] - '0') * 100 + (line[10] - '0') * 10 +
                        (line[11] - '0');

      size_t cursor = line_end + 2;
      while (cursor < header_end) {
        const size_t eol = view.find("\r\n", cursor);
        std::string_view field = view.substr(cursor, eol - cursor);
        cursor = eol + 2;
        const size_t colon = field.find(':');
        if (colon == std::string_view::npos) {
          Disconnect();
          return Status::ParseError("malformed response header");
        }
        response.headers.emplace_back(
            ToLowerAscii(field.substr(0, colon)),
            std::string(TrimOws(field.substr(colon + 1))));
      }

      size_t content_length = 0;
      const std::string_view length = response.Header("content-length");
      for (char c : length) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          Disconnect();
          return Status::ParseError("malformed Content-Length");
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
      }

      const size_t body_begin = header_end + 4;
      if (buffer_.size() - body_begin >= content_length) {
        response.body = buffer_.substr(body_begin, content_length);
        buffer_.erase(0, body_begin + content_length);
        if (ToLowerAscii(response.Header("connection")) == "close") {
          Disconnect();
        }
        return response;
      }
    }

    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Disconnect();
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

StatusOr<ClientResponse> HttpClient::Request(
    std::string_view method, std::string_view target, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string request;
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto& [name, value] : headers) {
    request += name;
    request += ": ";
    request += value;
    request += "\r\n";
  }
  if (!body.empty()) {
    request += "Content-Type: application/json\r\nContent-Length: ";
    request += std::to_string(body.size());
    request += "\r\n";
  }
  request += "\r\n";
  request += body;
  FORESIGHT_RETURN_IF_ERROR(SendRaw(request));
  return ReadResponse();
}

}  // namespace foresight
