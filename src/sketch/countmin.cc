#include "sketch/countmin.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace foresight {

namespace {

/// FNV-1a 64-bit, mixed with a per-row seed.
uint64_t Fnv1a(std::string_view data, uint64_t seed) {
  uint64_t hash = 14695981039346656037ULL ^ seed;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  // Final avalanche (splitmix-style) for better high-bit diffusion.
  hash = (hash ^ (hash >> 30)) * 0xbf58476d1ce4e5b9ULL;
  hash = (hash ^ (hash >> 27)) * 0x94d049bb133111ebULL;
  return hash ^ (hash >> 31);
}

}  // namespace

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(std::max<size_t>(8, width)),
      depth_(std::max<size_t>(1, depth)),
      seed_(seed),
      cells_(width_ * depth_, 0) {}

uint64_t CountMinSketch::HashRow(std::string_view item, size_t row) const {
  return Fnv1a(item, seed_ + 0x9e3779b97f4a7c15ULL * (row + 1)) % width_;
}

void CountMinSketch::Update(std::string_view item, uint64_t weight) {
  total_ += weight;
  for (size_t row = 0; row < depth_; ++row) {
    cells_[row * width_ + HashRow(item, row)] += weight;
  }
}

uint64_t CountMinSketch::EstimateCount(std::string_view item) const {
  uint64_t estimate = UINT64_MAX;
  for (size_t row = 0; row < depth_; ++row) {
    estimate = std::min(estimate, cells_[row * width_ + HashRow(item, row)]);
  }
  return estimate == UINT64_MAX ? 0 : estimate;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  FORESIGHT_CHECK(width_ == other.width_ && depth_ == other.depth_ &&
                  seed_ == other.seed_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

StatusOr<CountMinSketch> CountMinSketch::FromRaw(size_t width, size_t depth,
                                                 uint64_t seed, uint64_t total,
                                                 std::vector<uint64_t> cells) {
  CountMinSketch sketch(width, depth, seed);
  if (cells.size() != sketch.width_ * sketch.depth_) {
    return Status::InvalidArgument("CountMin cell count mismatch");
  }
  sketch.total_ = total;
  sketch.cells_ = std::move(cells);
  return sketch;
}

double CountMinSketch::ErrorBound() const {
  return std::exp(1.0) / static_cast<double>(width_) *
         static_cast<double>(total_);
}

}  // namespace foresight
