#ifndef FORESIGHT_SKETCH_COUNTMIN_H_
#define FORESIGHT_SKETCH_COUNTMIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace foresight {

/// Count–Min sketch (Cormode & Muthukrishnan 2005): frequency estimation with
/// one-sided error. Complements SpaceSaving in the categorical sketch bundle:
/// SpaceSaving identifies WHICH items are heavy, Count–Min refines point
/// frequency estimates for arbitrary items.
///
/// Guarantees: estimate >= true count, and with probability >= 1 - delta,
/// estimate <= true count + eps * N for eps = e / width, delta = e^-depth.
class CountMinSketch {
 public:
  CountMinSketch(size_t width = 512, size_t depth = 4, uint64_t seed = 11);

  /// Adds `weight` occurrences of `item`.
  void Update(std::string_view item, uint64_t weight = 1);

  /// Point estimate (never underestimates).
  uint64_t EstimateCount(std::string_view item) const;

  /// Merges a sketch with identical (width, depth, seed); checked.
  void Merge(const CountMinSketch& other);

  uint64_t total_count() const { return total_; }
  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

  /// Additive error bound eps * N with eps = e / width.
  double ErrorBound() const;

  /// Raw state, exposed for serialization.
  uint64_t seed() const { return seed_; }
  const std::vector<uint64_t>& cells() const { return cells_; }

  /// Reconstructs a sketch from persisted state (deserialization); `cells`
  /// must have width * depth entries.
  static StatusOr<CountMinSketch> FromRaw(size_t width, size_t depth,
                                          uint64_t seed, uint64_t total,
                                          std::vector<uint64_t> cells);

 private:
  uint64_t HashRow(std::string_view item, size_t row) const;

  size_t width_;
  size_t depth_;
  uint64_t seed_;
  uint64_t total_ = 0;
  std::vector<uint64_t> cells_;  // depth_ x width_, row-major.
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_COUNTMIN_H_
