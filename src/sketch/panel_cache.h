#ifndef FORESIGHT_SKETCH_PANEL_CACHE_H_
#define FORESIGHT_SKETCH_PANEL_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sketch/random_projection.h"
#include "sketch/simhash.h"
#include "util/sync.h"

namespace foresight {

/// One materialized block of the shared random panels: the hyperplane panel
/// (num_rows × hyperplane_k) and the projection panel (num_rows × projection_k)
/// for absolute rows [row_begin, row_begin + num_rows). Both are row-major, so
/// the blocked accumulation kernels stream them contiguously. Rows are pure
/// functions of (sketcher seed, absolute row) — a block's contents are
/// identical no matter which thread generates it or when.
struct RandomPanelBlock {
  size_t row_begin = 0;
  size_t num_rows = 0;
  size_t hyperplane_k = 0;
  size_t projection_k = 0;
  std::vector<double> hyperplane;  ///< num_rows × hyperplane_k, row-major.
  std::vector<double> projection;  ///< num_rows × projection_k, row-major.

  const double* hyperplane_row(size_t local_row) const {
    return hyperplane.data() + local_row * hyperplane_k;
  }
  const double* projection_row(size_t local_row) const {
    return projection.data() + local_row * projection_k;
  }
};

/// Generates and shares RandomPanelBlocks across all numeric columns and all
/// worker partitions of one preprocessing pass.
///
/// Why: both panels are pure functions of (seed, row), yet the pre-blocked
/// ingestion regenerated them once per worker block — d numeric columns and
/// w workers paid up to w (historically d) times the n·k Gaussian draws the
/// math requires. The cache materializes each block exactly once (first
/// Acquire generates under a per-block mutex; concurrent acquirers wait and
/// share) and frees it once every planned use has been released, so peak
/// memory tracks the set of blocks in flight, not the whole table.
///
/// Thread safety: Acquire/Release are safe from any thread. Lifetime: the
/// returned shared_ptr keeps a block alive even after the cache drops it.
class RandomPanelCache {
 public:
  /// Blocks cover [0, n_rows) in chunks of block_rows (the last block may be
  /// partial). The sketchers must outlive the cache.
  RandomPanelCache(const HyperplaneSketcher& hyperplane,
                   const ProjectionSketcher& projection, size_t n_rows,
                   size_t block_rows);

  size_t n_rows() const { return n_rows_; }
  size_t block_rows() const { return block_rows_; }
  size_t num_blocks() const { return num_blocks_; }
  size_t block_of_row(size_t row) const { return row / block_rows_; }
  size_t block_begin(size_t block) const { return block * block_rows_; }
  size_t block_end(size_t block) const {
    return std::min(n_rows_, (block + 1) * block_rows_);
  }

  /// Declares how many Acquire/Release pairs each block will see, so storage
  /// can be freed after the last one. Without a plan, blocks stay resident
  /// until the cache is destroyed.
  void PlanUses(std::vector<int64_t> uses_per_block);

  /// Returns the materialized block, generating it on first use. Exactly one
  /// thread generates a given block; concurrent acquirers block briefly and
  /// share the result.
  std::shared_ptr<const RandomPanelBlock> Acquire(size_t block);

  /// Signals one planned use finished; the last release frees the cache's
  /// reference to the block (outstanding shared_ptrs stay valid).
  void Release(size_t block);

  /// Total block generations so far. With a correct plan this never exceeds
  /// num_blocks(); it is telemetry for tests and benches, not a correctness
  /// input (regeneration is bit-identical by construction).
  uint64_t blocks_generated() const {
    return blocks_generated_.load(std::memory_order_relaxed);
  }

  /// Point-in-time telemetry snapshot. Counters are observability only;
  /// regeneration is bit-identical by construction, so none of these values
  /// can affect results.
  struct Stats {
    uint64_t acquires = 0;       ///< Total Acquire() calls.
    uint64_t hits = 0;           ///< Acquires served by a resident block.
    uint64_t generations = 0;    ///< Blocks materialized (== blocks_generated).
    uint64_t regenerations = 0;  ///< Generations of a block freed earlier.
  };
  Stats stats() const {
    Stats s;
    s.acquires = acquires_.load(std::memory_order_relaxed);
    s.generations = blocks_generated_.load(std::memory_order_relaxed);
    s.hits = s.acquires - s.generations;
    s.regenerations = regenerations_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  /// Per-block state. The slot mutex is a LEAF in the lock hierarchy
  /// (util/sync.h): block generation runs under it and acquires nothing else.
  struct Slot {
    Mutex mutex;
    std::shared_ptr<const RandomPanelBlock> block FORESIGHT_GUARDED_BY(mutex);
    std::atomic<int64_t> remaining_uses{-1};  ///< -1 = no plan (keep forever).
    bool generated_before FORESIGHT_GUARDED_BY(mutex) = false;
  };

  const HyperplaneSketcher* hyperplane_;
  const ProjectionSketcher* projection_;
  size_t n_rows_;
  size_t block_rows_;
  size_t num_blocks_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> blocks_generated_{0};
  std::atomic<uint64_t> acquires_{0};
  std::atomic<uint64_t> regenerations_{0};
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_PANEL_CACHE_H_
