#include "sketch/bundle.h"

#include <cmath>

#include "util/logging.h"

namespace foresight {

size_t SketchConfig::ResolveHyperplaneBits(size_t n_rows) const {
  if (hyperplane_bits > 0) return hyperplane_bits;
  double log2n = std::log2(static_cast<double>(std::max<size_t>(2, n_rows)));
  double bits = hyperplane_log2_factor * log2n * log2n;
  size_t rounded = static_cast<size_t>(std::ceil(bits / 64.0)) * 64;
  return std::max<size_t>(64, rounded);
}

void NumericColumnSketch::Merge(const NumericColumnSketch& other) {
  moments.Merge(other.moments);
  quantiles.Merge(other.quantiles);
  sample.Merge(other.sample);
  hyperplane_acc.Merge(other.hyperplane_acc);
  projection.Merge(other.projection);
  projection_ones.Merge(other.projection_ones);
}

ProjectionSketch NumericColumnSketch::CenteredProjection() const {
  ProjectionSketch centered = projection;
  double mean = moments.mean();
  std::vector<double>& c = centered.mutable_components();
  const std::vector<double>& ones = projection_ones.components();
  FORESIGHT_CHECK(c.size() == ones.size());
  for (size_t i = 0; i < c.size(); ++i) c[i] -= mean * ones[i];
  return centered;
}

void CategoricalColumnSketch::Merge(const CategoricalColumnSketch& other) {
  heavy_hitters.Merge(other.heavy_hitters);
  frequencies.Merge(other.frequencies);
  entropy.Merge(other.entropy);
  observed_count += other.observed_count;
}

BundleBuilder::BundleBuilder(const SketchConfig& config, size_t n_rows)
    : config_(config),
      hyperplane_bits_(config.ResolveHyperplaneBits(n_rows)),
      hyperplane_sketcher_(hyperplane_bits_, config.seed),
      projection_sketcher_(config.projection_dims, config.seed ^ 0xA5A5A5A5ULL) {}

NumericColumnSketch BundleBuilder::MakeNumericSketch() const {
  NumericColumnSketch sketch;
  sketch.quantiles = KllSketch(config_.kll_k, config_.seed ^ 0x1111);
  sketch.sample = ReservoirSample(config_.reservoir_capacity,
                                  config_.seed ^ 0x2222);
  sketch.hyperplane_acc.dot.assign(hyperplane_bits_, 0.0);
  sketch.hyperplane_acc.ones_dot.assign(hyperplane_bits_, 0.0);
  sketch.projection = ProjectionSketch(config_.projection_dims);
  sketch.projection_ones = ProjectionSketch(config_.projection_dims);
  return sketch;
}

CategoricalColumnSketch BundleBuilder::MakeCategoricalSketch() const {
  CategoricalColumnSketch sketch;
  sketch.heavy_hitters = SpaceSavingSketch(config_.spacesaving_capacity);
  sketch.frequencies = CountMinSketch(config_.countmin_width,
                                      config_.countmin_depth,
                                      config_.seed ^ 0x3333);
  sketch.entropy = EntropySketch(config_.entropy_k, config_.seed ^ 0x4444);
  return sketch;
}

void BundleBuilder::AccumulateNumeric(const NumericColumn& column,
                                      size_t row_begin, size_t row_end,
                                      NumericColumnSketch& sketch) const {
  FORESIGHT_CHECK(row_end <= column.size());
  // Null rows are skipped entirely: in sketch space this is mean-imputation
  // (a null contributes 0 to the centered dot products).
  std::vector<double> hyperplane_row(hyperplane_bits_);
  std::vector<double> projection_row(config_.projection_dims);
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!column.is_valid(row)) continue;
    hyperplane_sketcher_.GenerateRowHyperplanes(row, hyperplane_row);
    projection_sketcher_.GenerateRowComponents(row, projection_row);
    AccumulateRowValue(column.value(row), hyperplane_row, projection_row,
                       sketch);
  }
}

void BundleBuilder::AccumulateRowValue(
    double value, const std::vector<double>& hyperplane_row,
    const std::vector<double>& projection_row,
    NumericColumnSketch& sketch) const {
  FORESIGHT_DCHECK(hyperplane_row.size() == hyperplane_bits_);
  FORESIGHT_DCHECK(projection_row.size() == config_.projection_dims);
  sketch.moments.Add(value);
  sketch.quantiles.Update(value);
  sketch.sample.Add(value);
  double* dot = sketch.hyperplane_acc.dot.data();
  double* ones_dot = sketch.hyperplane_acc.ones_dot.data();
  const double* hp = hyperplane_row.data();
  for (size_t i = 0; i < hyperplane_bits_; ++i) {
    dot[i] += value * hp[i];
    ones_dot[i] += hp[i];
  }
  double projection_scale =
      1.0 / std::sqrt(static_cast<double>(config_.projection_dims));
  double scaled = value * projection_scale;
  std::vector<double>& proj = sketch.projection.mutable_components();
  std::vector<double>& ones = sketch.projection_ones.mutable_components();
  for (size_t i = 0; i < proj.size(); ++i) {
    proj[i] += scaled * projection_row[i];
    ones[i] += projection_scale * projection_row[i];
  }
}

void BundleBuilder::FinalizeNumeric(NumericColumnSketch& sketch) const {
  sketch.signature = hyperplane_sketcher_.Finalize(sketch.hyperplane_acc,
                                                   sketch.moments.mean());
}

void BundleBuilder::AccumulateCategorical(const CategoricalColumn& column,
                                          size_t row_begin, size_t row_end,
                                          CategoricalColumnSketch& sketch) const {
  FORESIGHT_CHECK(row_end <= column.size());
  // Dictionary encoding lets us batch: count codes in the range first, then
  // push each distinct value once with its weight. This keeps the O(k)-per-
  // distinct-item entropy sketch cheap while remaining a single data pass.
  std::vector<uint64_t> counts(column.cardinality(), 0);
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!column.is_valid(row)) continue;
    ++counts[static_cast<size_t>(column.code(row))];
  }
  for (size_t code = 0; code < counts.size(); ++code) {
    if (counts[code] == 0) continue;
    const std::string& value =
        column.dictionary_value(static_cast<int32_t>(code));
    sketch.heavy_hitters.Update(value, counts[code]);
    sketch.frequencies.Update(value, counts[code]);
    sketch.entropy.Update(value, counts[code]);
    sketch.observed_count += counts[code];
  }
}

NumericColumnSketch BundleBuilder::SketchNumeric(
    const NumericColumn& column) const {
  NumericColumnSketch sketch = MakeNumericSketch();
  AccumulateNumeric(column, 0, column.size(), sketch);
  FinalizeNumeric(sketch);
  return sketch;
}

CategoricalColumnSketch BundleBuilder::SketchCategorical(
    const CategoricalColumn& column) const {
  CategoricalColumnSketch sketch = MakeCategoricalSketch();
  AccumulateCategorical(column, 0, column.size(), sketch);
  return sketch;
}

}  // namespace foresight
