#include "sketch/bundle.h"

#include <algorithm>
#include <cmath>

#include "sketch/ingest_kernels.h"
#include "util/logging.h"

namespace foresight {

size_t SketchConfig::ResolveHyperplaneBits(size_t n_rows) const {
  if (hyperplane_bits > 0) return hyperplane_bits;
  double log2n = std::log2(static_cast<double>(std::max<size_t>(2, n_rows)));
  double bits = hyperplane_log2_factor * log2n * log2n;
  size_t rounded = static_cast<size_t>(std::ceil(bits / 64.0)) * 64;
  return std::max<size_t>(64, rounded);
}

void NumericColumnSketch::Merge(const NumericColumnSketch& other) {
  // Bundle-level short-circuits: a never-updated operand is an exact
  // identity, and merging INTO a never-updated sketch adopts the operand
  // byte-for-byte. These matter for the append path's bit-identity contract:
  // builder-made sketches carry full-size zero dot/projection vectors, so the
  // member-wise path below would flow the first partition through element-wise
  // FP adds against zeros — and `0.0 + -0.0 == +0.0` silently drops the sign
  // of negative zeros accumulated from zero-valued rows. Adoption also
  // carries the KLL/reservoir state (including serialized RNG state) across
  // unchanged.
  if (other.moments.count() == 0 && other.quantiles.count() == 0 &&
      other.sample.seen() == 0) {
    return;
  }
  if (moments.count() == 0 && quantiles.count() == 0 && sample.seen() == 0) {
    *this = other;
    centered_projection = ProjectionSketch();  // Derived cache; keep stale.
    return;
  }
  moments.Merge(other.moments);
  quantiles.Merge(other.quantiles);
  sample.Merge(other.sample);
  hyperplane_acc.Merge(other.hyperplane_acc);
  projection.Merge(other.projection);
  projection_ones.Merge(other.projection_ones);
  centered_projection = ProjectionSketch();  // Mean changed; cache is stale.
}

ProjectionSketch NumericColumnSketch::CenteredProjection() const {
  ProjectionSketch centered = projection;
  double mean = moments.mean();
  std::vector<double>& c = centered.mutable_components();
  const std::vector<double>& ones = projection_ones.components();
  FORESIGHT_CHECK(c.size() == ones.size());
  for (size_t i = 0; i < c.size(); ++i) c[i] -= mean * ones[i];
  return centered;
}

void CategoricalColumnSketch::Merge(const CategoricalColumnSketch& other) {
  // Same short-circuits as NumericColumnSketch::Merge: identity on an empty
  // operand, byte-for-byte adoption into an empty receiver.
  if (other.observed_count == 0 && other.heavy_hitters.total_count() == 0 &&
      other.frequencies.total_count() == 0 &&
      other.entropy.total_count() == 0) {
    return;
  }
  if (observed_count == 0 && heavy_hitters.total_count() == 0 &&
      frequencies.total_count() == 0 && entropy.total_count() == 0) {
    *this = other;
    return;
  }
  heavy_hitters.Merge(other.heavy_hitters);
  frequencies.Merge(other.frequencies);
  entropy.Merge(other.entropy);
  observed_count += other.observed_count;
}

BundleBuilder::BundleBuilder(const SketchConfig& config, size_t n_rows)
    : config_(config),
      hyperplane_bits_(config.ResolveHyperplaneBits(n_rows)),
      hyperplane_sketcher_(hyperplane_bits_, config.seed),
      projection_sketcher_(config.projection_dims, config.seed ^ 0xA5A5A5A5ULL),
      projection_scale_(1.0 /
                        std::sqrt(static_cast<double>(config.projection_dims))) {}

NumericColumnSketch BundleBuilder::MakeNumericSketch() const {
  NumericColumnSketch sketch;
  sketch.quantiles = KllSketch(config_.kll_k, config_.seed ^ 0x1111);
  sketch.sample = ReservoirSample(config_.reservoir_capacity,
                                  config_.seed ^ 0x2222);
  sketch.hyperplane_acc.dot.assign(hyperplane_bits_, 0.0);
  sketch.hyperplane_acc.ones_dot.assign(hyperplane_bits_, 0.0);
  sketch.projection = ProjectionSketch(config_.projection_dims);
  sketch.projection_ones = ProjectionSketch(config_.projection_dims);
  return sketch;
}

CategoricalColumnSketch BundleBuilder::MakeCategoricalSketch() const {
  CategoricalColumnSketch sketch;
  sketch.heavy_hitters = SpaceSavingSketch(config_.spacesaving_capacity);
  sketch.frequencies = CountMinSketch(config_.countmin_width,
                                      config_.countmin_depth,
                                      config_.seed ^ 0x3333);
  sketch.entropy = EntropySketch(config_.entropy_k, config_.seed ^ 0x4444);
  return sketch;
}

void BundleBuilder::AccumulateNumeric(const NumericColumn& column,
                                      size_t row_begin, size_t row_end,
                                      NumericColumnSketch& sketch,
                                      IngestScratch* scratch) const {
  FORESIGHT_CHECK(row_end <= column.size());
  // Null rows are skipped entirely: in sketch space this is mean-imputation
  // (a null contributes 0 to the centered dot products).
  std::vector<double> local_hyperplane;
  std::vector<double> local_projection;
  std::vector<double>& hyperplane_row =
      scratch ? scratch->hyperplane_row : local_hyperplane;
  std::vector<double>& projection_row =
      scratch ? scratch->projection_row : local_projection;
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!column.is_valid(row)) continue;
    hyperplane_sketcher_.GenerateRowHyperplanes(row, hyperplane_row);
    projection_sketcher_.GenerateRowComponents(row, projection_row);
    AccumulateRowValue(column.value(row), hyperplane_row, projection_row,
                       sketch);
  }
}

void BundleBuilder::AccumulateNumericBlocked(const NumericColumn& column,
                                             const RandomPanelBlock& panel,
                                             size_t row_begin, size_t row_end,
                                             NumericColumnSketch& sketch,
                                             IngestScratch& scratch,
                                             bool skip_ones) const {
  FORESIGHT_CHECK(row_end <= column.size());
  FORESIGHT_CHECK(row_begin >= panel.row_begin &&
                  row_end <= panel.row_begin + panel.num_rows);
  FORESIGHT_CHECK(panel.hyperplane_k == hyperplane_bits_);
  FORESIGHT_CHECK(panel.projection_k == config_.projection_dims);
  FORESIGHT_DCHECK(sketch.hyperplane_acc.dot.size() == hyperplane_bits_);
  FORESIGHT_DCHECK(sketch.projection.k() == config_.projection_dims);
  if (row_begin >= row_end) return;
  const size_t local_begin = row_begin - panel.row_begin;
  const double* values = nullptr;
  const uint32_t* local_rows = nullptr;
  size_t count = 0;
  if (column.null_count() == 0) {
    // Fully-valid fast path: stream the column's raw buffer against the
    // contiguous panel rows starting at local_begin — no compaction copy.
    values = column.values().data() + row_begin;
    count = row_end - row_begin;
    for (size_t j = 0; j < count; ++j) {
      const double v = values[j];
      sketch.moments.Add(v);
      sketch.quantiles.Update(v);
      sketch.sample.Add(v);
    }
  } else {
    // Compact the valid rows; value sketches are fed inline so they see
    // values in the same row order as the row-at-a-time path.
    scratch.values.clear();
    scratch.local_rows.clear();
    for (size_t row = row_begin; row < row_end; ++row) {
      if (!column.is_valid(row)) continue;
      const double v = column.value(row);
      sketch.moments.Add(v);
      sketch.quantiles.Update(v);
      sketch.sample.Add(v);
      scratch.values.push_back(v);
      scratch.local_rows.push_back(
          static_cast<uint32_t>(row - panel.row_begin));
    }
    if (scratch.values.empty()) return;
    values = scratch.values.data();
    local_rows = scratch.local_rows.data();
    count = scratch.values.size();
  }
  const double* hp_base =
      local_rows ? panel.hyperplane.data() : panel.hyperplane_row(local_begin);
  const double* pj_base =
      local_rows ? panel.projection.data() : panel.projection_row(local_begin);
  hyperplane_sketcher_.AccumulateValuesBlock(
      hp_base, local_rows, values, count, sketch.hyperplane_acc.dot.data());
  projection_sketcher_.AccumulateValuesBlock(
      pj_base, local_rows, values, count, projection_scale_,
      sketch.projection.mutable_components().data());
  if (!skip_ones) {
    hyperplane_sketcher_.AccumulateOnesBlock(
        hp_base, local_rows, count, 1.0,
        sketch.hyperplane_acc.ones_dot.data());
    projection_sketcher_.AccumulateOnesBlock(
        pj_base, local_rows, count, projection_scale_,
        sketch.projection_ones.mutable_components().data());
  }
}

void BundleBuilder::AccumulateNumericBlockedGroup(
    const NumericColumn* const* columns, NumericColumnSketch* const* sketches,
    size_t num_columns, const RandomPanelBlock& panel, size_t row_begin,
    size_t row_end) const {
  FORESIGHT_CHECK(panel.hyperplane_k == hyperplane_bits_);
  FORESIGHT_CHECK(panel.projection_k == config_.projection_dims);
  FORESIGHT_CHECK(row_begin >= panel.row_begin &&
                  row_end <= panel.row_begin + panel.num_rows);
  if (row_begin >= row_end || num_columns == 0) return;
  const size_t local_begin = row_begin - panel.row_begin;
  const size_t count = row_end - row_begin;
  // Four columns per kernel call: the group's hyperplane accumulators
  // (4 x k doubles) and each four-row panel slab stay L1-resident together.
  constexpr size_t kGroup = 4;
  const double* values[kGroup];
  double* hyperplane_accs[kGroup];
  double* projection_accs[kGroup];
  for (size_t g = 0; g < num_columns; g += kGroup) {
    const size_t gn = std::min(kGroup, num_columns - g);
    for (size_t c = 0; c < gn; ++c) {
      const NumericColumn& column = *columns[g + c];
      FORESIGHT_CHECK(column.null_count() == 0);
      FORESIGHT_CHECK(row_end <= column.size());
      NumericColumnSketch& sketch = *sketches[g + c];
      FORESIGHT_DCHECK(sketch.hyperplane_acc.dot.size() == hyperplane_bits_);
      FORESIGHT_DCHECK(sketch.projection.k() == config_.projection_dims);
      const double* v = column.values().data() + row_begin;
      for (size_t j = 0; j < count; ++j) {
        const double value = v[j];
        sketch.moments.Add(value);
        sketch.quantiles.Update(value);
        sketch.sample.Add(value);
      }
      values[c] = v;
      hyperplane_accs[c] = sketch.hyperplane_acc.dot.data();
      projection_accs[c] = sketch.projection.mutable_components().data();
    }
    ingest_kernels::DenseValuesAxpyGroup(panel.hyperplane_row(local_begin),
                                         values, gn, count, hyperplane_bits_,
                                         1.0, hyperplane_accs);
    ingest_kernels::DenseValuesAxpyGroup(
        panel.projection_row(local_begin), values, gn, count,
        config_.projection_dims, projection_scale_, projection_accs);
  }
}

void BundleBuilder::AccumulateSharedOnes(const RandomPanelBlock& panel,
                                         size_t row_begin, size_t row_end,
                                         SharedOnes& ones) const {
  FORESIGHT_CHECK(row_begin >= panel.row_begin &&
                  row_end <= panel.row_begin + panel.num_rows);
  if (ones.hyperplane_ones.empty()) {
    ones.hyperplane_ones.assign(hyperplane_bits_, 0.0);
    ones.projection_ones.assign(config_.projection_dims, 0.0);
  }
  if (row_begin >= row_end) return;
  const size_t local_begin = row_begin - panel.row_begin;
  const size_t count = row_end - row_begin;
  hyperplane_sketcher_.AccumulateOnesBlock(panel.hyperplane_row(local_begin),
                                           nullptr, count, 1.0,
                                           ones.hyperplane_ones.data());
  projection_sketcher_.AccumulateOnesBlock(panel.projection_row(local_begin),
                                           nullptr, count, projection_scale_,
                                           ones.projection_ones.data());
}

void BundleBuilder::ApplySharedOnes(const SharedOnes& ones,
                                    NumericColumnSketch& sketch) const {
  // Overwrites: the target's ones accumulators must still be all-zero (the
  // column was ingested with skip_ones). The copy equals replaying the same
  // additions from zero, so the result is bit-identical to self-accumulation.
  FORESIGHT_CHECK(ones.hyperplane_ones.size() == hyperplane_bits_);
  FORESIGHT_CHECK(ones.projection_ones.size() == config_.projection_dims);
  sketch.hyperplane_acc.ones_dot = ones.hyperplane_ones;
  sketch.projection_ones.mutable_components() = ones.projection_ones;
}

void BundleBuilder::AccumulateRowValue(
    double value, const std::vector<double>& hyperplane_row,
    const std::vector<double>& projection_row,
    NumericColumnSketch& sketch) const {
  FORESIGHT_DCHECK(hyperplane_row.size() == hyperplane_bits_);
  FORESIGHT_DCHECK(projection_row.size() == config_.projection_dims);
  sketch.moments.Add(value);
  sketch.quantiles.Update(value);
  sketch.sample.Add(value);
  double* dot = sketch.hyperplane_acc.dot.data();
  double* ones_dot = sketch.hyperplane_acc.ones_dot.data();
  const double* hp = hyperplane_row.data();
  for (size_t i = 0; i < hyperplane_bits_; ++i) {
    dot[i] += value * hp[i];
    ones_dot[i] += hp[i];
  }
  double scaled = value * projection_scale_;
  std::vector<double>& proj = sketch.projection.mutable_components();
  std::vector<double>& ones = sketch.projection_ones.mutable_components();
  for (size_t i = 0; i < proj.size(); ++i) {
    proj[i] += scaled * projection_row[i];
    ones[i] += projection_scale_ * projection_row[i];
  }
}

void BundleBuilder::FinalizeNumeric(NumericColumnSketch& sketch) const {
  sketch.signature = hyperplane_sketcher_.Finalize(sketch.hyperplane_acc,
                                                   sketch.moments.mean());
  sketch.RefreshCenteredProjection();
}

void BundleBuilder::AccumulateCategorical(const CategoricalColumn& column,
                                          size_t row_begin, size_t row_end,
                                          CategoricalColumnSketch& sketch) const {
  FORESIGHT_CHECK(row_end <= column.size());
  // Dictionary encoding lets us batch: count codes in the range first, then
  // push each distinct value once with its weight. This keeps the O(k)-per-
  // distinct-item entropy sketch cheap while remaining a single data pass.
  std::vector<uint64_t> counts(column.cardinality(), 0);
  for (size_t row = row_begin; row < row_end; ++row) {
    if (!column.is_valid(row)) continue;
    ++counts[static_cast<size_t>(column.code(row))];
  }
  for (size_t code = 0; code < counts.size(); ++code) {
    if (counts[code] == 0) continue;
    const std::string& value =
        column.dictionary_value(static_cast<int32_t>(code));
    sketch.heavy_hitters.Update(value, counts[code]);
    sketch.frequencies.Update(value, counts[code]);
    sketch.entropy.Update(value, counts[code]);
    sketch.observed_count += counts[code];
  }
}

NumericColumnSketch BundleBuilder::SketchNumeric(
    const NumericColumn& column) const {
  NumericColumnSketch sketch = MakeNumericSketch();
  AccumulateNumeric(column, 0, column.size(), sketch);
  FinalizeNumeric(sketch);
  return sketch;
}

CategoricalColumnSketch BundleBuilder::SketchCategorical(
    const CategoricalColumn& column) const {
  CategoricalColumnSketch sketch = MakeCategoricalSketch();
  AccumulateCategorical(column, 0, column.size(), sketch);
  return sketch;
}

}  // namespace foresight
