#ifndef FORESIGHT_SKETCH_SPACESAVING_H_
#define FORESIGHT_SKETCH_SPACESAVING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace foresight {

/// One monitored item with its count estimate and maximum overestimation.
struct HeavyHitter {
  std::string item;
  uint64_t estimated_count = 0;
  /// `estimated_count - error <= true count <= estimated_count`.
  uint64_t error = 0;
};

/// SpaceSaving frequent-items sketch (Metwally, Agrawal, El Abbadi 2005) —
/// the paper's "frequent items sketch" (§3). Maintains `capacity` counters;
/// any item with true frequency > n / capacity is guaranteed to be monitored.
/// Supports the Heterogeneous Frequencies insight: RelFreqEstimate(k)
/// approximates RelFreq(k, c) from the sketch alone.
class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(size_t capacity = 64);

  /// Observes one occurrence of `item`.
  void Update(const std::string& item, uint64_t weight = 1);

  /// Merges another sketch; the result monitors the union's heavy hitters
  /// with capacities combined per the standard counter-union algorithm.
  void Merge(const SpaceSavingSketch& other);

  /// Total stream length observed.
  uint64_t total_count() const { return total_; }

  size_t capacity() const { return capacity_; }
  size_t num_monitored() const { return counters_.size(); }

  /// Estimated count of `item`: its counter if monitored, otherwise 0
  /// (a valid lower-bound convention for reporting).
  uint64_t EstimateCount(const std::string& item) const;

  /// Monitored items sorted by descending estimated count.
  std::vector<HeavyHitter> TopK(size_t k) const;

  /// Estimate of RelFreq(k): total relative frequency of the k most frequent
  /// items (§2.2, insight 5), computed from the top-k counter estimates.
  double RelFreqEstimate(size_t k) const;

  /// Upper bound on count error for unmonitored items (min counter value).
  uint64_t MaxError() const;

  /// Raw counter map (item -> {count, error}), exposed for serialization.
  const std::unordered_map<std::string, std::pair<uint64_t, uint64_t>>&
  counters() const {
    return counters_;
  }

  /// Reconstructs a sketch from persisted state (deserialization).
  static SpaceSavingSketch FromRaw(
      size_t capacity, uint64_t total,
      std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> counters);

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  /// item -> (count, error). With capacities <= a few hundred, a flat hash
  /// map plus linear min-scan on eviction is fast and simple.
  std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> counters_;
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_SPACESAVING_H_
