#include "sketch/entropy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/random.h"

namespace foresight {

namespace {
constexpr double kPi = 3.14159265358979323846;
/// kappa = E[exp(-(pi/2) X)] for X ~ maximally skewed 1-stable as produced by
/// Rng::StableSkewed(1): its Laplace functional is E[e^{-tX}] =
/// exp((2/pi) t ln t), so at t = pi/2 kappa = exp(ln(pi/2)) = pi/2.
/// (Verified by Monte Carlo in RngTest.StableSkewedLaplaceFunctionalMatchesKappa.)
constexpr double kKappa = kPi / 2.0;

uint64_t Fnv1a(std::string_view data, uint64_t seed) {
  uint64_t hash = 14695981039346656037ULL ^ seed;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  hash = (hash ^ (hash >> 30)) * 0xbf58476d1ce4e5b9ULL;
  hash = (hash ^ (hash >> 27)) * 0x94d049bb133111ebULL;
  return hash ^ (hash >> 31);
}

}  // namespace

EntropySketch::EntropySketch(size_t k, uint64_t seed)
    : k_(std::max<size_t>(8, k)), seed_(seed), registers_(k_, 0.0) {}

void EntropySketch::Update(std::string_view item, uint64_t weight) {
  total_ += weight;
  // Deterministic per-item stable deviates: the same item always contributes
  // the same x_ij to register j, so register state depends only on counts.
  Rng rng(Fnv1a(item, seed_));
  double w = static_cast<double>(weight);
  for (size_t j = 0; j < k_; ++j) {
    registers_[j] += w * rng.StableSkewed(1.0);
  }
}

void EntropySketch::Merge(const EntropySketch& other) {
  FORESIGHT_CHECK(k_ == other.k_ && seed_ == other.seed_);
  // An empty operand is an exact identity and an empty receiver adopts the
  // operand byte-for-byte: element-wise `0.0 + x` is NOT a bitwise identity
  // for IEEE doubles (0.0 + -0.0 == +0.0 drops the sign of negative zeros),
  // and the append path's bit-identity gates depend on these short-circuits.
  if (other.total_ == 0) return;
  if (total_ == 0) {
    registers_ = other.registers_;
    total_ = other.total_;
    return;
  }
  for (size_t j = 0; j < k_; ++j) registers_[j] += other.registers_[j];
  total_ += other.total_;
}

StatusOr<EntropySketch> EntropySketch::FromRaw(size_t k, uint64_t seed,
                                               uint64_t total,
                                               std::vector<double> registers) {
  EntropySketch sketch(k, seed);
  if (registers.size() != sketch.k_) {
    return Status::InvalidArgument("entropy sketch register count mismatch");
  }
  sketch.total_ = total;
  sketch.registers_ = std::move(registers);
  return sketch;
}

double EntropySketch::EstimateEntropy() const {
  if (total_ == 0) return 0.0;
  double n = static_cast<double>(total_);
  // With Y_j = S_j / n, 1-stable scaling gives Y =d X + (2/pi) H, hence
  // E[exp(-(pi/2) Y)] = kappa * exp(-H) and
  // H = ln(kappa) - ln(mean_j exp(-(pi/2) Y_j)).
  // Compute the log-mean-exp stably.
  double max_exponent = -std::numeric_limits<double>::infinity();
  std::vector<double> exponents(k_);
  for (size_t j = 0; j < k_; ++j) {
    exponents[j] = -(kPi / 2.0) * registers_[j] / n;
    max_exponent = std::max(max_exponent, exponents[j]);
  }
  double sum = 0.0;
  for (size_t j = 0; j < k_; ++j) {
    sum += std::exp(exponents[j] - max_exponent);
  }
  double log_mean = max_exponent + std::log(sum / static_cast<double>(k_));
  double h = std::log(kKappa) - log_mean;
  return std::clamp(h, 0.0, std::log(n));
}

}  // namespace foresight
