#include "sketch/spacesaving.h"

#include <algorithm>

#include "util/logging.h"

namespace foresight {

SpaceSavingSketch::SpaceSavingSketch(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void SpaceSavingSketch::Update(const std::string& item, uint64_t weight) {
  total_ += weight;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    it->second.first += weight;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(item, std::make_pair(weight, uint64_t{0}));
    return;
  }
  // Evict the minimum counter; the newcomer inherits its count as error.
  // Ties break on the item string, not map position: hash iteration order is
  // platform-dependent, and the evicted counter must not be.
  auto min_it = counters_.begin();
  for (auto cit = counters_.begin(); cit != counters_.end(); ++cit) {
    if (cit->second.first < min_it->second.first ||
        (cit->second.first == min_it->second.first &&
         cit->first < min_it->first)) {
      min_it = cit;
    }
  }
  uint64_t min_count = min_it->second.first;
  counters_.erase(min_it);
  counters_.emplace(item, std::make_pair(min_count + weight, min_count));
}

void SpaceSavingSketch::Merge(const SpaceSavingSketch& other) {
  // Standard counter-union: sum counts and errors of common items; items
  // present on one side only keep their values. Then shrink back to capacity
  // by keeping the largest counters (adding the evicted mass is unnecessary
  // because SpaceSaving guarantees survive union-then-truncate).
  std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> merged =
      counters_;
  // determinism-ok: map-union result is independent of visit order.
  for (const auto& [item, ce] : other.counters_) {
    auto it = merged.find(item);
    if (it == merged.end()) {
      merged.emplace(item, ce);
    } else {
      it->second.first += ce.first;
      it->second.second += ce.second;
    }
  }
  if (merged.size() > capacity_) {
    std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>> items(
        merged.begin(), merged.end());
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
      if (a.second.first != b.second.first)
        return a.second.first > b.second.first;
      return a.first < b.first;
    });
    items.resize(capacity_);
    merged.clear();
    for (auto& kv : items) merged.insert(std::move(kv));
  }
  counters_ = std::move(merged);
  total_ += other.total_;
}

uint64_t SpaceSavingSketch::EstimateCount(const std::string& item) const {
  auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second.first;
}

std::vector<HeavyHitter> SpaceSavingSketch::TopK(size_t k) const {
  std::vector<HeavyHitter> hitters;
  hitters.reserve(counters_.size());
  // determinism-ok: sorted below with a total (count, item) order.
  for (const auto& [item, ce] : counters_) {
    hitters.push_back({item, ce.first, ce.second});
  }
  std::sort(hitters.begin(), hitters.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.estimated_count != b.estimated_count)
                return a.estimated_count > b.estimated_count;
              return a.item < b.item;
            });
  if (hitters.size() > k) hitters.resize(k);
  return hitters;
}

double SpaceSavingSketch::RelFreqEstimate(size_t k) const {
  if (total_ == 0) return 0.0;
  uint64_t top = 0;
  for (const HeavyHitter& h : TopK(k)) top += h.estimated_count;
  double rel = static_cast<double>(top) / static_cast<double>(total_);
  return std::min(rel, 1.0);
}

SpaceSavingSketch SpaceSavingSketch::FromRaw(
    size_t capacity, uint64_t total,
    std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> counters) {
  SpaceSavingSketch sketch(capacity);
  sketch.total_ = total;
  sketch.counters_ = std::move(counters);
  return sketch;
}

uint64_t SpaceSavingSketch::MaxError() const {
  if (counters_.size() < capacity_) return 0;
  uint64_t min_count = UINT64_MAX;
  // determinism-ok: integer min is order-independent.
  for (const auto& [item, ce] : counters_) {
    min_count = std::min(min_count, ce.first);
  }
  return min_count == UINT64_MAX ? 0 : min_count;
}

}  // namespace foresight
