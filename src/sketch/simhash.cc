#include "sketch/simhash.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sketch/ingest_kernels.h"
#include "util/logging.h"
#include "util/random.h"

namespace foresight {

namespace {
constexpr double kPi = 3.14159265358979323846;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

BitSignature::BitSignature(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

BitSignature BitSignature::FromWords(size_t num_bits,
                                     std::vector<uint64_t> words) {
  FORESIGHT_CHECK(words.size() == (num_bits + 63) / 64);
  BitSignature signature;
  signature.num_bits_ = num_bits;
  signature.words_ = std::move(words);
  return signature;
}

uint64_t BitSignature::HammingDistance(const BitSignature& a,
                                       const BitSignature& b) {
  FORESIGHT_CHECK(a.num_bits_ == b.num_bits_);
  uint64_t distance = 0;
  for (size_t w = 0; w < a.words_.size(); ++w) {
    distance += static_cast<uint64_t>(std::popcount(a.words_[w] ^ b.words_[w]));
  }
  return distance;
}

uint64_t BitSignature::HammingDistancePrefix(const BitSignature& a,
                                             const BitSignature& b,
                                             size_t bits) {
  FORESIGHT_CHECK(a.num_bits_ == b.num_bits_);
  FORESIGHT_CHECK(bits <= a.num_bits_);
  uint64_t distance = 0;
  size_t full_words = bits / 64;
  for (size_t w = 0; w < full_words; ++w) {
    distance += static_cast<uint64_t>(std::popcount(a.words_[w] ^ b.words_[w]));
  }
  size_t tail = bits % 64;
  if (tail > 0) {
    uint64_t mask = (uint64_t{1} << tail) - 1;
    distance += static_cast<uint64_t>(
        std::popcount((a.words_[full_words] ^ b.words_[full_words]) & mask));
  }
  return distance;
}

void BitSignature::BatchHammingPrefix(const BitSignature& a,
                                      const BitSignature* const* others,
                                      size_t count, size_t bits,
                                      uint64_t* out) {
  FORESIGHT_CHECK(bits <= a.num_bits_);
  const size_t full_words = bits / 64;
  const size_t tail = bits % 64;
  const uint64_t tail_mask = tail > 0 ? (uint64_t{1} << tail) - 1 : 0;
  const uint64_t* aw = a.words_.data();
  for (size_t j = 0; j < count; ++j) {
    const BitSignature& b = *others[j];
    FORESIGHT_CHECK(b.num_bits_ == a.num_bits_);
    const uint64_t* bw = b.words_.data();
    uint64_t distance = 0;
    for (size_t w = 0; w < full_words; ++w) {
      distance += static_cast<uint64_t>(std::popcount(aw[w] ^ bw[w]));
    }
    if (tail > 0) {
      distance += static_cast<uint64_t>(
          std::popcount((aw[full_words] ^ bw[full_words]) & tail_mask));
    }
    out[j] = distance;
  }
}

void HyperplaneAccumulator::Merge(const HyperplaneAccumulator& other) {
  if (other.dot.empty()) return;
  if (dot.empty()) {
    *this = other;
    return;
  }
  FORESIGHT_CHECK(dot.size() == other.dot.size());
  for (size_t i = 0; i < dot.size(); ++i) {
    dot[i] += other.dot[i];
    ones_dot[i] += other.ones_dot[i];
  }
}

HyperplaneSketcher::HyperplaneSketcher(size_t k, uint64_t seed)
    : k_(k), seed_(seed) {
  FORESIGHT_CHECK(k >= 1);
}

void HyperplaneSketcher::AccumulateRange(const std::vector<double>& values,
                                         size_t row_offset,
                                         HyperplaneAccumulator& acc) const {
  if (acc.dot.empty()) {
    acc.dot.assign(k_, 0.0);
    acc.ones_dot.assign(k_, 0.0);
  }
  FORESIGHT_CHECK(acc.dot.size() == k_);
  std::vector<double> hyperplane_row(k_);
  for (size_t r = 0; r < values.size(); ++r) {
    GenerateRowHyperplanes(row_offset + r, hyperplane_row);
    double v = values[r];
    for (size_t i = 0; i < k_; ++i) {
      acc.dot[i] += v * hyperplane_row[i];
      acc.ones_dot[i] += hyperplane_row[i];
    }
  }
}

void HyperplaneSketcher::GenerateRowHyperplanes(size_t row,
                                                std::vector<double>& out) const {
  out.resize(k_);
  GenerateRowHyperplanes(row, out.data());
}

void HyperplaneSketcher::GenerateRowHyperplanes(size_t row, double* out) const {
  // Deterministic Gaussian hyperplane components for this absolute row:
  // shared across columns sketched with the same (k, seed).
  Rng rng(SplitMix64(seed_ ^ row));
  rng.FillNormals(out, k_);
}

void HyperplaneSketcher::AccumulateValuesBlock(const double* panel,
                                               const uint32_t* local_rows,
                                               const double* values,
                                               size_t count,
                                               double* dot) const {
  // Raw values: scale == 1.0 is exact, so the shared kernel feeds dot[i]
  // the same products as the row-at-a-time path.
  if (local_rows == nullptr) {
    ingest_kernels::DenseValuesAxpy(panel, values, count, k_, 1.0, dot);
  } else {
    ingest_kernels::GatherValuesAxpy(panel, local_rows, values, count, k_,
                                     1.0, dot);
  }
}

void HyperplaneSketcher::AccumulateOnesBlock(const double* panel,
                                             const uint32_t* local_rows,
                                             size_t count, double scale,
                                             double* ones_dot) const {
  if (local_rows == nullptr) {
    ingest_kernels::DenseOnesAxpy(panel, count, k_, scale, ones_dot);
  } else {
    ingest_kernels::GatherOnesAxpy(panel, local_rows, count, k_, scale,
                                   ones_dot);
  }
}

BitSignature HyperplaneSketcher::Finalize(const HyperplaneAccumulator& acc,
                                          double mean) const {
  FORESIGHT_CHECK(acc.dot.size() == k_);
  BitSignature signature(k_);
  for (size_t i = 0; i < k_; ++i) {
    double centered = acc.dot[i] - mean * acc.ones_dot[i];
    signature.set_bit(i, centered >= 0.0);
  }
  return signature;
}

BitSignature HyperplaneSketcher::Sketch(const std::vector<double>& values,
                                        double mean) const {
  HyperplaneAccumulator acc;
  AccumulateRange(values, 0, acc);
  return Finalize(acc, mean);
}

double HyperplaneSketcher::EstimateCorrelation(const BitSignature& a,
                                               const BitSignature& b) {
  FORESIGHT_CHECK(a.num_bits() == b.num_bits());
  FORESIGHT_CHECK(a.num_bits() > 0);
  return EstimateCorrelationFromHamming(BitSignature::HammingDistance(a, b),
                                        a.num_bits());
}

double HyperplaneSketcher::EstimateCorrelationPrefix(const BitSignature& a,
                                                     const BitSignature& b,
                                                     size_t bits) {
  return EstimateCorrelationFromHamming(
      BitSignature::HammingDistancePrefix(a, b, bits), bits);
}

double HyperplaneSketcher::EstimateCorrelationFromHamming(uint64_t hamming,
                                                          size_t bits) {
  FORESIGHT_CHECK(bits > 0);
  return std::cos(kPi * static_cast<double>(hamming) /
                  static_cast<double>(bits));
}

double HyperplaneSketcher::HammingFractionBound(size_t bits, double delta) {
  FORESIGHT_CHECK(bits > 0);
  FORESIGHT_CHECK(delta > 0.0 && delta < 1.0);
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(bits)));
}

void HyperplaneSketcher::EstimateCorrelationInterval(uint64_t hamming,
                                                     size_t bits, double delta,
                                                     double* lo, double* hi) {
  const double p_hat =
      static_cast<double>(hamming) / static_cast<double>(bits);
  const double eps = HammingFractionBound(bits, delta);
  // cos is decreasing on [0, pi]: the largest plausible p gives the lower
  // correlation bound and vice versa.
  const double p_max = std::min(1.0, p_hat + eps);
  const double p_min = std::max(0.0, p_hat - eps);
  *lo = std::clamp(std::cos(kPi * p_max), -1.0, 1.0);
  *hi = std::clamp(std::cos(kPi * p_min), -1.0, 1.0);
}

}  // namespace foresight
