#ifndef FORESIGHT_SKETCH_SIMHASH_H_
#define FORESIGHT_SKETCH_SIMHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace foresight {

/// Bit signature produced by the random hyperplane sketch: bit i is
/// phi_i(b) = [ b~ . r_i >= 0 ] for the i-th random Gaussian hyperplane r_i
/// (§3; Charikar's SimHash). Stores k bits packed into 64-bit words —
/// |B| * k bits for a whole dataset, exactly the paper's memory bound.
class BitSignature {
 public:
  BitSignature() = default;
  explicit BitSignature(size_t num_bits);

  size_t num_bits() const { return num_bits_; }
  bool bit(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set_bit(size_t i, bool value) {
    if (value) {
      words_[i >> 6] |= (uint64_t{1} << (i & 63));
    } else {
      words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
    }
  }

  const std::vector<uint64_t>& words() const { return words_; }

  /// Reconstructs a signature from packed words (deserialization); `words`
  /// must hold ceil(num_bits / 64) entries.
  static BitSignature FromWords(size_t num_bits, std::vector<uint64_t> words);

  /// Hamming distance via per-word popcount: O(k / 64).
  static uint64_t HammingDistance(const BitSignature& a, const BitSignature& b);

  /// Hamming distance over only the first `bits` positions. Because the
  /// hyperplanes are independent, the first `bits` bits of a signature form a
  /// valid smaller sketch — used to sweep k without re-sketching.
  static uint64_t HammingDistancePrefix(const BitSignature& a,
                                        const BitSignature& b, size_t bits);

  /// Batched prefix Hamming: out[j] = HammingDistancePrefix(a, *others[j],
  /// bits) for j < count. One word-at-a-time popcount sweep per signature
  /// with `a`'s words hot in registers/L1 — the estimate pass of the
  /// sketch-first prune planner scores an entire run of pairs sharing their
  /// first column with a single call (DESIGN.md "Sketch-first pruning").
  static void BatchHammingPrefix(const BitSignature& a,
                                 const BitSignature* const* others,
                                 size_t count, size_t bits, uint64_t* out);

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Mergeable partial state of a hyperplane sketch over a row range: the k raw
/// dot products b . r_i plus the k "ones" dot products 1 . r_i. Summing
/// accumulators from disjoint row ranges composes exactly (the paper's sketch
/// composability), and centering is applied at finalize time:
/// b~ . r_i = b . r_i - mu_b * (1 . r_i).
struct HyperplaneAccumulator {
  std::vector<double> dot;       ///< b . r_i for i in [0, k)
  std::vector<double> ones_dot;  ///< 1 . r_i for i in [0, k)

  /// Adds another partial accumulator (disjoint row range, same sketcher).
  void Merge(const HyperplaneAccumulator& other);
};

/// Factory for random hyperplane sketches sharing one set of hyperplanes.
///
/// The Gaussian hyperplane components r_i[row] are generated deterministically
/// from (seed, row), so every column sketched by the same HyperplaneSketcher
/// sees the same hyperplanes — required for cos(pi*H/k) to estimate rho — and
/// row ranges can be processed independently and merged.
class HyperplaneSketcher {
 public:
  /// `k` is the number of hyperplanes (sketch bits). The paper recommends
  /// k = O(log^2 n) for high accuracy.
  HyperplaneSketcher(size_t k, uint64_t seed);

  size_t k() const { return k_; }
  uint64_t seed() const { return seed_; }

  /// Accumulates rows [row_offset, row_offset + values.size()) into `acc`
  /// (allocating it on first use). O(values.size() * k).
  void AccumulateRange(const std::vector<double>& values, size_t row_offset,
                       HyperplaneAccumulator& acc) const;

  /// Writes the k Gaussian hyperplane components for `row` into `out`
  /// (resized to k). Lets callers sketch many columns in a single pass over
  /// rows, generating each row's hyperplane components once — this is how the
  /// preprocessor achieves the paper's one-pass O(|B| * n * k) bound.
  void GenerateRowHyperplanes(size_t row, std::vector<double>& out) const;

  /// Same, writing into a raw buffer of k doubles (panel materialization).
  void GenerateRowHyperplanes(size_t row, double* out) const;

  /// Blocked accumulation against a pre-generated hyperplane panel.
  ///
  /// `panel` holds consecutive rows' hyperplane components, row-major with
  /// stride k: panel row j starts at panel + j * k. When `local_rows` is
  /// null, values[j] pairs with panel row j (a fully-valid row range);
  /// otherwise values[j] pairs with panel row local_rows[j] (nulls compacted
  /// out). Accumulates dot[i] += values[j] * panel[local_row(j)][i] over all
  /// j in ascending order.
  ///
  /// Bit-identity guarantee: each accumulator dot[i] receives exactly the
  /// additions the row-at-a-time path (GenerateRowHyperplanes + scalar
  /// accumulation) performs, in the same row order, one add per row — the
  /// kernel only blocks rows so the panel is generated once and the loops
  /// stay dense/contiguous (same guarantee PR 1/2 established for
  /// parallelism).
  void AccumulateValuesBlock(const double* panel, const uint32_t* local_rows,
                             const double* values, size_t count,
                             double* dot) const;

  /// Ones-side counterpart: ones_dot[i] += scale * panel[local_row(j)][i]
  /// for the same rows (scale is 1 for the hyperplane sketch; the parameter
  /// keeps the kernel shared with callers that fold a constant weight in).
  /// Because this sequence only depends on the row set — not on any column's
  /// values — callers can run it once and copy the result into every
  /// fully-valid column, bit-identically.
  void AccumulateOnesBlock(const double* panel, const uint32_t* local_rows,
                           size_t count, double scale, double* ones_dot) const;

  /// Converts a (possibly merged) accumulator into a bit signature, centering
  /// by the column mean.
  BitSignature Finalize(const HyperplaneAccumulator& acc, double mean) const;

  /// One-shot convenience: sketch a whole column.
  BitSignature Sketch(const std::vector<double>& values, double mean) const;

  /// Unbiased estimator of the Pearson correlation coefficient:
  /// cos(pi * H(sig_a, sig_b) / k) (§3; Charikar 2002).
  static double EstimateCorrelation(const BitSignature& a,
                                    const BitSignature& b);

  /// Same estimator restricted to the first `bits` hyperplanes (a valid
  /// smaller-k sketch; see BitSignature::HammingDistancePrefix).
  static double EstimateCorrelationPrefix(const BitSignature& a,
                                          const BitSignature& b, size_t bits);

  /// The same estimator from a precomputed Hamming distance over `bits`
  /// hyperplanes — the batched-popcount path (BatchHammingPrefix) uses this
  /// so each pair's bits are counted exactly once.
  static double EstimateCorrelationFromHamming(uint64_t hamming, size_t bits);

  /// Hoeffding deviation bound on the Hamming FRACTION p = H/k: with
  /// probability >= 1 - delta, |p_hat - p| <= sqrt(ln(2/delta) / (2k)).
  /// Each signature bit agreement is an independent Bernoulli trial (the
  /// hyperplanes are drawn independently), so the bound needs no
  /// distributional assumption about the data.
  static double HammingFractionBound(size_t bits, double delta);

  /// Error-bounded correlation estimate: given a Hamming distance `hamming`
  /// over `bits` prefix hyperplanes, writes an interval [lo, hi] (clamped to
  /// [-1, 1]) containing the population value cos(pi * p) with probability
  /// >= 1 - delta. cos is monotone decreasing on [0, pi], so the interval is
  /// the image of the clamped Hoeffding interval on p.
  static void EstimateCorrelationInterval(uint64_t hamming, size_t bits,
                                          double delta, double* lo,
                                          double* hi);

 private:
  size_t k_;
  uint64_t seed_;
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_SIMHASH_H_
