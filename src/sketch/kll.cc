#include "sketch/kll.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace foresight {

namespace {
constexpr double kCapacityDecay = 2.0 / 3.0;
}

KllSketch::KllSketch(size_t k_param, uint64_t seed)
    : k_param_(std::max<size_t>(8, k_param)),
      rng_state_(seed | 1),
      levels_(1) {}

void KllSketch::Update(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  levels_[0].push_back(value);
  Compress();
}

size_t KllSketch::RetainedItems() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

double KllSketch::NormalizedRankError() const {
  return 2.296 / std::pow(static_cast<double>(k_param_), 0.9);
}

void KllSketch::Compress() {
  // Capacity of level l with top level H: k * decay^(H - l), floored at 2.
  size_t num_levels = levels_.size();
  size_t total_capacity = 0;
  std::vector<size_t> capacity(num_levels);
  for (size_t l = 0; l < num_levels; ++l) {
    double cap = static_cast<double>(k_param_) *
                 std::pow(kCapacityDecay,
                          static_cast<double>(num_levels - 1 - l));
    capacity[l] = std::max<size_t>(2, static_cast<size_t>(std::ceil(cap)));
    total_capacity += capacity[l];
  }
  if (RetainedItems() <= total_capacity) return;
  for (size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() > capacity[l]) {
      CompactLevel(l);
      return;  // One compaction per Update keeps the amortized cost low.
    }
  }
}

void KllSketch::CompactLevel(size_t level) {
  // Grow first: taking references into levels_ before emplace_back would
  // leave them dangling after reallocation.
  if (level + 1 >= levels_.size()) levels_.emplace_back();
  std::vector<double>& buffer = levels_[level];
  if (buffer.size() < 2) return;
  std::sort(buffer.begin(), buffer.end());
  // If odd, keep one item behind at this level.
  bool keep_last = (buffer.size() % 2) != 0;
  size_t pair_count = buffer.size() / 2;
  // Random offset coin flip (xorshift64*).
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  size_t offset = static_cast<size_t>((rng_state_ * 2685821657736338717ULL) >> 63);

  std::vector<double>& next = levels_[level + 1];
  for (size_t p = 0; p < pair_count; ++p) {
    next.push_back(buffer[2 * p + offset]);
  }
  if (keep_last) {
    double last = buffer.back();
    buffer.clear();
    buffer.push_back(last);
  } else {
    buffer.clear();
  }
  // Higher levels are queried via the global sorted merge, so we do not need
  // to keep them sorted here.
}

void KllSketch::Merge(const KllSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (size_t l = 0; l < other.levels_.size(); ++l) {
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                      other.levels_[l].end());
  }
  // Re-establish capacity invariants.
  for (size_t guard = 0; guard < 64; ++guard) {
    size_t before = RetainedItems();
    Compress();
    if (RetainedItems() == before) break;
  }
}

std::vector<std::pair<double, uint64_t>> KllSketch::SortedWeightedItems()
    const {
  std::vector<std::pair<double, uint64_t>> items;
  items.reserve(RetainedItems());
  for (size_t l = 0; l < levels_.size(); ++l) {
    uint64_t weight = uint64_t{1} << l;
    for (double v : levels_[l]) items.emplace_back(v, weight);
  }
  std::sort(items.begin(), items.end());
  return items;
}

double KllSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  auto items = SortedWeightedItems();
  uint64_t total_weight = 0;
  for (const auto& [value, weight] : items) total_weight += weight;
  double target = q * static_cast<double>(total_weight);
  double cumulative = 0.0;
  for (const auto& [value, weight] : items) {
    cumulative += static_cast<double>(weight);
    if (cumulative >= target) return value;
  }
  return max_;
}

KllSketch KllSketch::FromRaw(size_t k_param, uint64_t rng_state,
                             uint64_t count, double min, double max,
                             std::vector<std::vector<double>> levels) {
  KllSketch sketch(k_param, 1);
  sketch.rng_state_ = rng_state | 1;
  sketch.count_ = count;
  sketch.min_ = min;
  sketch.max_ = max;
  if (!levels.empty()) sketch.levels_ = std::move(levels);
  return sketch;
}

double KllSketch::Rank(double value) const {
  if (count_ == 0) return 0.0;
  auto items = SortedWeightedItems();
  uint64_t total_weight = 0;
  uint64_t below = 0;
  for (const auto& [item_value, weight] : items) {
    total_weight += weight;
    if (item_value <= value) below += weight;
  }
  if (total_weight == 0) return 0.0;
  return static_cast<double>(below) / static_cast<double>(total_weight);
}

}  // namespace foresight
