#include "sketch/kll.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace foresight {

namespace {
constexpr double kCapacityDecay = 2.0 / 3.0;
// Floor on per-level capacity. The textbook decay shrinks the bottom level
// to a handful of slots once the sketch is ~8 levels tall, which makes
// level-0 compactions (sort + promote) fire every few updates and dominates
// ingestion cost. A wider floor amortizes the same asymptotic work over 8x
// more updates at a small, bounded memory cost; rank error only improves
// because every level retains at least as many items as before.
constexpr size_t kMinLevelCapacity = 64;

// Branchless merge of two ascending runs src[lo, mid) and src[mid, hi) into
// dst. Ties keep the left run's element first (stable). The hot loop compiles
// to a cmov select + two flag-driven index bumps — no data-dependent branch,
// which is what makes this worth having: introsort on random doubles spends
// most of its cycles on branch misses, and level compaction is the dominant
// cost of KllSketch::Update.
void MergeRuns(const double* src, double* dst, size_t lo, size_t mid,
               size_t hi) {
  size_t a = lo;
  size_t b = mid;
  size_t o = lo;
  while (a < mid && b < hi) {
    const double va = src[a];
    const double vb = src[b];
    const bool take_b = vb < va;
    dst[o++] = take_b ? vb : va;
    a += static_cast<size_t>(!take_b);
    b += static_cast<size_t>(take_b);
  }
  while (a < mid) dst[o++] = src[a++];
  while (b < hi) dst[o++] = src[b++];
}

// Branchless compare-exchange: compiles to minsd/maxsd, no branch. Equal
// doubles are bitwise interchangeable, so instability is unobservable.
inline void CompareExchange(double& a, double& b) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  a = lo;
  b = hi;
}

// Optimal 19-comparator, depth-6 sorting network for 8 elements (verified
// exhaustively via the 0-1 principle). Entirely branch-free, so it beats
// comparison sorts on random data where branch misses dominate.
inline void SortNetwork8(double* v) {
  CompareExchange(v[0], v[2]); CompareExchange(v[1], v[3]);
  CompareExchange(v[4], v[6]); CompareExchange(v[5], v[7]);
  CompareExchange(v[0], v[4]); CompareExchange(v[1], v[5]);
  CompareExchange(v[2], v[6]); CompareExchange(v[3], v[7]);
  CompareExchange(v[0], v[1]); CompareExchange(v[2], v[3]);
  CompareExchange(v[4], v[5]); CompareExchange(v[6], v[7]);
  CompareExchange(v[2], v[4]); CompareExchange(v[3], v[5]);
  CompareExchange(v[1], v[4]); CompareExchange(v[3], v[6]);
  CompareExchange(v[1], v[2]); CompareExchange(v[3], v[4]);
  CompareExchange(v[5], v[6]);
}

// Adaptive natural merge sort: detect ascending runs, then merge adjacent
// run pairs (ping-ponging with a scratch buffer) until one run remains.
// Higher-level buffers are concatenations of already-sorted promotion
// batches, so they sort in one or two cheap merge passes; random level-0
// buffers take ~log2(n) branchless passes. The result is the same ascending
// array std::sort produces (equal doubles are bitwise interchangeable), so
// compaction output is unchanged.
void SortLevelBuffer(std::vector<double>& buffer) {
  const size_t n = buffer.size();
  if (n < 2) return;
  static thread_local std::vector<double> temp;
  static thread_local std::vector<size_t> runs;
  static thread_local std::vector<size_t> next_runs;
  runs.clear();
  runs.push_back(0);
  for (size_t i = 1; i < n; ++i) {
    if (buffer[i] < buffer[i - 1]) runs.push_back(i);
  }
  runs.push_back(n);
  if (runs.size() == 2) return;  // Already ascending.
  if ((runs.size() - 1) * 4 > n) {
    // Mostly tiny runs — random data, the level-0 case. Natural runs average
    // length ~2 there, so swap the detected boundaries for branch-free
    // 8-element network sorts: runs start at length 8 and the merge phase
    // does ~3 fewer passes over the buffer.
    runs.clear();
    double* data = buffer.data();
    const size_t full = n - n % 8;
    for (size_t base = 0; base < full; base += 8) {
      SortNetwork8(data + base);
      runs.push_back(base);
    }
    if (full < n) {
      // Insertion-sort the short tail so it forms one final run.
      for (size_t i = full + 1; i < n; ++i) {
        const double v = data[i];
        size_t j = i;
        for (; j > full && v < data[j - 1]; --j) data[j] = data[j - 1];
        data[j] = v;
      }
      runs.push_back(full);
    }
    runs.push_back(n);
  }
  temp.resize(n);
  double* from = buffer.data();
  double* to = temp.data();
  while (runs.size() > 2) {
    next_runs.clear();
    next_runs.push_back(0);
    size_t r = 0;
    for (; r + 2 < runs.size(); r += 2) {
      MergeRuns(from, to, runs[r], runs[r + 1], runs[r + 2]);
      next_runs.push_back(runs[r + 2]);
    }
    if (r + 1 < runs.size()) {
      // Odd run count: the trailing run rides along unmerged.
      std::copy(from + runs[r], from + runs[r + 1], to + runs[r]);
      next_runs.push_back(runs[r + 1]);
    }
    std::swap(from, to);
    runs.swap(next_runs);
  }
  if (from != buffer.data()) std::copy(from, from + n, buffer.data());
}
}

KllSketch::KllSketch(size_t k_param, uint64_t seed)
    : k_param_(std::max<size_t>(8, k_param)),
      rng_state_(seed | 1),
      levels_(1) {
  RefreshCapacities();
}

void KllSketch::Update(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  levels_[0].push_back(value);
  ++retained_;
  if (retained_ <= total_capacity_) return;
  Compress();
}

size_t KllSketch::RetainedItems() const {
  FORESIGHT_DCHECK(([&] {
    size_t total = 0;
    for (const auto& level : levels_) total += level.size();
    return total;
  }()) == retained_);
  return retained_;
}

double KllSketch::NormalizedRankError() const {
  return 2.296 / std::pow(static_cast<double>(k_param_), 0.9);
}

void KllSketch::RefreshCapacities() {
  // Capacity of level l with top level H: k * decay^(H - l), floored at
  // min(k, kMinLevelCapacity).
  size_t num_levels = levels_.size();
  size_t floor_cap = std::min(k_param_, kMinLevelCapacity);
  capacity_.resize(num_levels);
  total_capacity_ = 0;
  for (size_t l = 0; l < num_levels; ++l) {
    double cap = static_cast<double>(k_param_) *
                 std::pow(kCapacityDecay,
                          static_cast<double>(num_levels - 1 - l));
    capacity_[l] =
        std::max<size_t>(floor_cap, static_cast<size_t>(std::ceil(cap)));
    total_capacity_ += capacity_[l];
  }
  // The bottom level sees every update; keeping its storage pre-reserved
  // avoids reallocation churn between compactions.
  if (!levels_.empty()) levels_[0].reserve(capacity_[0] + 1);
}

void KllSketch::Compress() {
  if (retained_ <= total_capacity_) return;
  for (size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() > capacity_[l]) {
      CompactLevel(l);
      return;  // One compaction per Update keeps the amortized cost low.
    }
  }
}

void KllSketch::CompactLevel(size_t level) {
  // Grow first: taking references into levels_ before emplace_back would
  // leave them dangling after reallocation.
  if (level + 1 >= levels_.size()) {
    levels_.emplace_back();
    RefreshCapacities();
  }
  std::vector<double>& buffer = levels_[level];
  if (buffer.size() < 2) return;
  SortLevelBuffer(buffer);
  // If odd, keep one item behind at this level.
  bool keep_last = (buffer.size() % 2) != 0;
  size_t pair_count = buffer.size() / 2;
  // Random offset coin flip (xorshift64*).
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  size_t offset = static_cast<size_t>((rng_state_ * 2685821657736338717ULL) >> 63);

  std::vector<double>& next = levels_[level + 1];
  for (size_t p = 0; p < pair_count; ++p) {
    next.push_back(buffer[2 * p + offset]);
  }
  if (keep_last) {
    double last = buffer.back();
    buffer.clear();
    buffer.push_back(last);
  } else {
    buffer.clear();
  }
  // Each compacted pair shrinks to one promoted item.
  retained_ -= pair_count;
  // Higher levels are queried via the global sorted merge, so we do not need
  // to keep them sorted here.
}

void KllSketch::Merge(const KllSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 && k_param_ == other.k_param_) {
    // Merging into an empty sketch of the same accuracy adopts the operand
    // wholesale — including its compaction RNG state, which is serialized, so
    // the adopted sketch stays bit-identical to the original through future
    // updates and round-trips.
    *this = other;
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
    RefreshCapacities();
  }
  for (size_t l = 0; l < other.levels_.size(); ++l) {
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                      other.levels_[l].end());
    retained_ += other.levels_[l].size();
  }
  // Re-establish capacity invariants.
  for (size_t guard = 0; guard < 64; ++guard) {
    size_t before = RetainedItems();
    Compress();
    if (RetainedItems() == before) break;
  }
}

std::vector<std::pair<double, uint64_t>> KllSketch::SortedWeightedItems()
    const {
  std::vector<std::pair<double, uint64_t>> items;
  items.reserve(RetainedItems());
  for (size_t l = 0; l < levels_.size(); ++l) {
    uint64_t weight = uint64_t{1} << l;
    for (double v : levels_[l]) items.emplace_back(v, weight);
  }
  std::sort(items.begin(), items.end());
  return items;
}

double KllSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  auto items = SortedWeightedItems();
  uint64_t total_weight = 0;
  for (const auto& [value, weight] : items) total_weight += weight;
  double target = q * static_cast<double>(total_weight);
  double cumulative = 0.0;
  for (const auto& [value, weight] : items) {
    cumulative += static_cast<double>(weight);
    if (cumulative >= target) return value;
  }
  return max_;
}

KllSketch KllSketch::FromRaw(size_t k_param, uint64_t rng_state,
                             uint64_t count, double min, double max,
                             std::vector<std::vector<double>> levels) {
  KllSketch sketch(k_param, 1);
  // Preserve the state verbatim so serialize/deserialize is a fixed point:
  // compaction's xorshift64* walk can legitimately reach even states, and
  // only the all-zero state is degenerate.
  sketch.rng_state_ = rng_state != 0 ? rng_state : 1;
  sketch.count_ = count;
  sketch.min_ = min;
  sketch.max_ = max;
  if (!levels.empty()) sketch.levels_ = std::move(levels);
  sketch.retained_ = 0;
  for (const auto& level : sketch.levels_) sketch.retained_ += level.size();
  sketch.RefreshCapacities();
  return sketch;
}

double KllSketch::Rank(double value) const {
  if (count_ == 0) return 0.0;
  auto items = SortedWeightedItems();
  uint64_t total_weight = 0;
  uint64_t below = 0;
  for (const auto& [item_value, weight] : items) {
    total_weight += weight;
    if (item_value <= value) below += weight;
  }
  if (total_weight == 0) return 0.0;
  return static_cast<double>(below) / static_cast<double>(total_weight);
}

}  // namespace foresight
