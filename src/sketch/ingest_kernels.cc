#include "sketch/ingest_kernels.h"

#include "util/simd_clones.h"

namespace foresight {
namespace ingest_kernels {

// See the header for the bit-identity contract. Four rows per sweep keep
// each accumulator in a register across four adds; per-accumulator addition
// order stays strictly row-ascending (a = ((acc[i] + c0) + c1) + ... exactly
// as the row-at-a-time path), so the compiler may vectorize across i but
// never reassociates across rows.

FORESIGHT_KERNEL_CLONES
void DenseValuesAxpy(const double* panel, const double* values, size_t count,
                     size_t k, double scale, double* acc) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* p0 = panel + j * k;
    const double* p1 = p0 + k;
    const double* p2 = p1 + k;
    const double* p3 = p2 + k;
    const double v0 = values[j] * scale;
    const double v1 = values[j + 1] * scale;
    const double v2 = values[j + 2] * scale;
    const double v3 = values[j + 3] * scale;
    for (size_t i = 0; i < k; ++i) {
      double a = acc[i];
      a += v0 * p0[i];
      a += v1 * p1[i];
      a += v2 * p2[i];
      a += v3 * p3[i];
      acc[i] = a;
    }
  }
  for (; j < count; ++j) {
    const double* p = panel + j * k;
    const double v = values[j] * scale;
    for (size_t i = 0; i < k; ++i) acc[i] += v * p[i];
  }
}

FORESIGHT_KERNEL_CLONES
void DenseValuesAxpyGroup(const double* panel, const double* const* values,
                          size_t ncols, size_t count, size_t k, double scale,
                          double* const* accs) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* p0 = panel + j * k;
    const double* p1 = p0 + k;
    const double* p2 = p1 + k;
    const double* p3 = p2 + k;
    for (size_t c = 0; c < ncols; ++c) {
      const double* v = values[c];
      double* acc = accs[c];
      const double v0 = v[j] * scale;
      const double v1 = v[j + 1] * scale;
      const double v2 = v[j + 2] * scale;
      const double v3 = v[j + 3] * scale;
      for (size_t i = 0; i < k; ++i) {
        double a = acc[i];
        a += v0 * p0[i];
        a += v1 * p1[i];
        a += v2 * p2[i];
        a += v3 * p3[i];
        acc[i] = a;
      }
    }
  }
  for (; j < count; ++j) {
    const double* p = panel + j * k;
    for (size_t c = 0; c < ncols; ++c) {
      const double v = values[c][j] * scale;
      double* acc = accs[c];
      for (size_t i = 0; i < k; ++i) acc[i] += v * p[i];
    }
  }
}

FORESIGHT_KERNEL_CLONES
void GatherValuesAxpy(const double* panel, const uint32_t* local_rows,
                      const double* values, size_t count, size_t k,
                      double scale, double* acc) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* p0 = panel + local_rows[j] * k;
    const double* p1 = panel + local_rows[j + 1] * k;
    const double* p2 = panel + local_rows[j + 2] * k;
    const double* p3 = panel + local_rows[j + 3] * k;
    const double v0 = values[j] * scale;
    const double v1 = values[j + 1] * scale;
    const double v2 = values[j + 2] * scale;
    const double v3 = values[j + 3] * scale;
    for (size_t i = 0; i < k; ++i) {
      double a = acc[i];
      a += v0 * p0[i];
      a += v1 * p1[i];
      a += v2 * p2[i];
      a += v3 * p3[i];
      acc[i] = a;
    }
  }
  for (; j < count; ++j) {
    const double* p = panel + local_rows[j] * k;
    const double v = values[j] * scale;
    for (size_t i = 0; i < k; ++i) acc[i] += v * p[i];
  }
}

FORESIGHT_KERNEL_CLONES
void DenseOnesAxpy(const double* panel, size_t count, size_t k, double scale,
                   double* acc) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* p0 = panel + j * k;
    const double* p1 = p0 + k;
    const double* p2 = p1 + k;
    const double* p3 = p2 + k;
    for (size_t i = 0; i < k; ++i) {
      double a = acc[i];
      a += scale * p0[i];
      a += scale * p1[i];
      a += scale * p2[i];
      a += scale * p3[i];
      acc[i] = a;
    }
  }
  for (; j < count; ++j) {
    const double* p = panel + j * k;
    for (size_t i = 0; i < k; ++i) acc[i] += scale * p[i];
  }
}

FORESIGHT_KERNEL_CLONES
void GatherOnesAxpy(const double* panel, const uint32_t* local_rows,
                    size_t count, size_t k, double scale, double* acc) {
  size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const double* p0 = panel + local_rows[j] * k;
    const double* p1 = panel + local_rows[j + 1] * k;
    const double* p2 = panel + local_rows[j + 2] * k;
    const double* p3 = panel + local_rows[j + 3] * k;
    for (size_t i = 0; i < k; ++i) {
      double a = acc[i];
      a += scale * p0[i];
      a += scale * p1[i];
      a += scale * p2[i];
      a += scale * p3[i];
      acc[i] = a;
    }
  }
  for (; j < count; ++j) {
    const double* p = panel + local_rows[j] * k;
    for (size_t i = 0; i < k; ++i) acc[i] += scale * p[i];
  }
}

}  // namespace ingest_kernels
}  // namespace foresight
