#include "sketch/random_projection.h"

#include <algorithm>
#include <cmath>

#include "sketch/ingest_kernels.h"
#include "util/logging.h"
#include "util/random.h"

namespace foresight {

namespace {
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

void ProjectionSketch::Merge(const ProjectionSketch& other) {
  if (other.components_.empty()) return;
  if (components_.empty()) {
    *this = other;
    return;
  }
  FORESIGHT_CHECK(components_.size() == other.components_.size());
  for (size_t i = 0; i < components_.size(); ++i) {
    components_[i] += other.components_[i];
  }
}

double ProjectionSketch::EstimateSquaredNorm() const {
  double sum = 0.0;
  for (double c : components_) sum += c * c;
  return sum;
}

double ProjectionSketch::EstimateDot(const ProjectionSketch& a,
                                     const ProjectionSketch& b) {
  FORESIGHT_CHECK(a.k() == b.k());
  double sum = 0.0;
  for (size_t i = 0; i < a.k(); ++i) {
    sum += a.components_[i] * b.components_[i];
  }
  return sum;
}

double ProjectionSketch::EstimateSquaredDistance(const ProjectionSketch& a,
                                                 const ProjectionSketch& b) {
  FORESIGHT_CHECK(a.k() == b.k());
  double sum = 0.0;
  for (size_t i = 0; i < a.k(); ++i) {
    double d = a.components_[i] - b.components_[i];
    sum += d * d;
  }
  return sum;
}

double ProjectionSketch::EstimateCorrelation(const ProjectionSketch& a,
                                             const ProjectionSketch& b) {
  double na = a.EstimateSquaredNorm();
  double nb = b.EstimateSquaredNorm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  double rho = EstimateDot(a, b) / std::sqrt(na * nb);
  return std::clamp(rho, -1.0, 1.0);
}

ProjectionSketcher::ProjectionSketcher(size_t k, uint64_t seed)
    : k_(k), seed_(seed) {
  FORESIGHT_CHECK(k >= 1);
}

void ProjectionSketcher::GenerateRowComponents(size_t row,
                                               std::vector<double>& out) const {
  out.resize(k_);
  GenerateRowComponents(row, out.data());
}

void ProjectionSketcher::GenerateRowComponents(size_t row, double* out) const {
  Rng rng(SplitMix64(seed_ ^ (row * 0x5851f42d4c957f2dULL + 0x14057b7ef767814fULL)));
  rng.FillNormals(out, k_);
}

void ProjectionSketcher::AccumulateValuesBlock(const double* panel,
                                               const uint32_t* local_rows,
                                               const double* values,
                                               size_t count, double scale,
                                               double* components) const {
  // The shared kernel rounds the scaled value once per row before the inner
  // loop, exactly as AccumulateRowValue does.
  if (local_rows == nullptr) {
    ingest_kernels::DenseValuesAxpy(panel, values, count, k_, scale,
                                    components);
  } else {
    ingest_kernels::GatherValuesAxpy(panel, local_rows, values, count, k_,
                                     scale, components);
  }
}

void ProjectionSketcher::AccumulateOnesBlock(const double* panel,
                                             const uint32_t* local_rows,
                                             size_t count, double scale,
                                             double* components) const {
  if (local_rows == nullptr) {
    ingest_kernels::DenseOnesAxpy(panel, count, k_, scale, components);
  } else {
    ingest_kernels::GatherOnesAxpy(panel, local_rows, count, k_, scale,
                                   components);
  }
}

void ProjectionSketcher::AccumulateRange(const std::vector<double>& values,
                                         size_t row_offset, double mean,
                                         ProjectionSketch& sketch) const {
  if (sketch.k() == 0) sketch = ProjectionSketch(k_);
  FORESIGHT_CHECK(sketch.k() == k_);
  std::vector<double>& components = sketch.mutable_components();
  std::vector<double> row_components(k_);
  double scale = 1.0 / std::sqrt(static_cast<double>(k_));
  for (size_t r = 0; r < values.size(); ++r) {
    GenerateRowComponents(row_offset + r, row_components);
    double v = (values[r] - mean) * scale;
    for (size_t i = 0; i < k_; ++i) {
      components[i] += v * row_components[i];
    }
  }
}

ProjectionSketch ProjectionSketcher::Sketch(const std::vector<double>& values,
                                            double mean) const {
  ProjectionSketch sketch(k_);
  AccumulateRange(values, 0, mean, sketch);
  return sketch;
}

}  // namespace foresight
