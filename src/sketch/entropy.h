#ifndef FORESIGHT_SKETCH_ENTROPY_H_
#define FORESIGHT_SKETCH_ENTROPY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace foresight {

/// Streaming Shannon-entropy sketch via maximally skewed 1-stable projections
/// (Clifford & Cosma 2013) — the paper's "entropy sketch" (§3).
///
/// Mechanics: each of the `k` sketch registers accumulates
/// S_j = sum_i c_i * x_ij, where c_i is the count of distinct item i and
/// x_ij ~ Stable(alpha=1, beta=1) is derived deterministically from
/// hash(item, j). By 1-stable scaling, S_j / n =d X + (2/pi)(ln n - H), so
/// H is recovered from the empirical Laplace functional
/// mean_j exp(-(pi/2) * S_j / n), whose expectation is kappa * e^(H - ln n)
/// with the universal constant kappa = E[e^{-(pi/2) X}] = 2 / pi.
///
/// Updates are O(k) per item, memory O(k) doubles, and sketches over disjoint
/// stream partitions merge by register-wise addition (composability, §3).
class EntropySketch {
 public:
  explicit EntropySketch(size_t k = 256, uint64_t seed = 13);

  /// Observes `weight` occurrences of `item`.
  void Update(std::string_view item, uint64_t weight = 1);

  /// Merges a sketch with identical (k, seed); checked.
  void Merge(const EntropySketch& other);

  uint64_t total_count() const { return total_; }
  size_t k() const { return k_; }

  /// Estimated Shannon entropy (nats) of the item distribution. Returns 0 on
  /// an empty sketch; clamps to [0, ln(total_count)].
  double EstimateEntropy() const;

  const std::vector<double>& registers() const { return registers_; }
  uint64_t seed() const { return seed_; }

  /// Reconstructs a sketch from persisted state (deserialization);
  /// `registers` must have k entries.
  static StatusOr<EntropySketch> FromRaw(size_t k, uint64_t seed,
                                         uint64_t total,
                                         std::vector<double> registers);

 private:
  size_t k_;
  uint64_t seed_;
  uint64_t total_ = 0;
  std::vector<double> registers_;
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_ENTROPY_H_
