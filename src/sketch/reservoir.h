#ifndef FORESIGHT_SKETCH_RESERVOIR_H_
#define FORESIGHT_SKETCH_RESERVOIR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace foresight {

/// Uniform reservoir sample of a numeric stream (Vitter's Algorithm R) — the
/// paper's "samples" (§3). Used for metrics and visualizations that want raw
/// points (scatter plots, KDE-based multimodality) without keeping the column.
class ReservoirSample {
 public:
  explicit ReservoirSample(size_t capacity = 1024, uint64_t seed = 17);

  /// Observes one stream element.
  void Add(double value);

  /// Merges another reservoir over a disjoint stream: the result is a uniform
  /// sample of the union, never exceeding this reservoir's capacity. Merge
  /// randomness derives deterministically from the operands' logical state
  /// (seen counts and capacity), not the member RNG, so a reservoir merged
  /// after a FromRaw round-trip produces bit-identical results to one merged
  /// in place. When both operands still hold their full streams and the union
  /// fits in capacity, the merge is plain concatenation — bit-identical to
  /// having Add()ed the concatenated stream one-pass.
  void Merge(const ReservoirSample& other);

  /// Elements currently held (min(capacity, stream length)).
  const std::vector<double>& values() const { return values_; }

  /// Stream length observed so far.
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

  /// Reconstructs a reservoir from persisted state (deserialization). The
  /// internal RNG restarts from `seed`; future updates remain uniform.
  /// CHECK-fails unless values.size() <= capacity and values.size() <= seen —
  /// deserializers must reject such input before calling (see
  /// sketch/serialize.cc, which treats snapshots as hostile).
  static ReservoirSample FromRaw(size_t capacity, uint64_t seed, uint64_t seen,
                                 std::vector<double> values);

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t seen_ = 0;
  std::vector<double> values_;
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_RESERVOIR_H_
