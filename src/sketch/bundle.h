#ifndef FORESIGHT_SKETCH_BUNDLE_H_
#define FORESIGHT_SKETCH_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "data/column.h"
#include "sketch/countmin.h"
#include "sketch/panel_cache.h"
#include "sketch/entropy.h"
#include "sketch/kll.h"
#include "sketch/random_projection.h"
#include "sketch/reservoir.h"
#include "sketch/simhash.h"
#include "sketch/spacesaving.h"
#include "stats/moments.h"

namespace foresight {

/// Tunable sizes for the per-column sketch bundles.
struct SketchConfig {
  /// Hyperplane bits for correlation estimation. The paper prescribes
  /// k = O(log^2 n); 0 means "auto": round up hyperplane_log2_factor * log2(n)^2
  /// to a multiple of 64.
  size_t hyperplane_bits = 0;
  double hyperplane_log2_factor = 1.0;
  size_t projection_dims = 64;
  size_t kll_k = 200;
  size_t reservoir_capacity = 1024;
  size_t spacesaving_capacity = 64;
  size_t countmin_width = 512;
  size_t countmin_depth = 4;
  size_t entropy_k = 128;
  uint64_t seed = 0xF0E51647;

  /// Resolves hyperplane_bits for a dataset with n rows.
  size_t ResolveHyperplaneBits(size_t n_rows) const;
};

/// All sketch state for one NUMERIC column: moments (exact, single-pass),
/// KLL quantiles, reservoir sample, hyperplane signature, JL projection.
/// This is the §3 composition: one preprocessing pass fills every member,
/// and disjoint row ranges merge member-wise.
struct NumericColumnSketch {
  RunningMoments moments;
  KllSketch quantiles;
  ReservoirSample sample;
  /// Raw mergeable accumulator; finalized into `signature` once the global
  /// mean is known.
  HyperplaneAccumulator hyperplane_acc;
  BitSignature signature;
  /// JL projection of the RAW column plus the projection of the all-ones
  /// indicator over the same (valid) rows; centering composes as
  /// proj(b~) = proj(b) - mean * proj(1).
  ProjectionSketch projection;
  ProjectionSketch projection_ones;
  /// Derived cache: CenteredProjection() materialized at finalize time so
  /// pairwise metrics don't re-center per pair. Empty (k() == 0) when stale;
  /// never serialized. Refresh with RefreshCenteredProjection().
  ProjectionSketch centered_projection;

  /// Projection of the centered column, using the final mean.
  ProjectionSketch CenteredProjection() const;

  /// Recomputes `centered_projection` from the current members.
  void RefreshCenteredProjection() { centered_projection = CenteredProjection(); }

  /// Merges a sketch of a disjoint row range of the same column. Invalidates
  /// `centered_projection` (the mean changes).
  void Merge(const NumericColumnSketch& other);
};

/// All sketch state for one CATEGORICAL column: frequent items, point
/// frequencies, entropy, and an exact distinct-count of dictionary codes.
struct CategoricalColumnSketch {
  SpaceSavingSketch heavy_hitters;
  CountMinSketch frequencies;
  EntropySketch entropy;
  uint64_t observed_count = 0;

  void Merge(const CategoricalColumnSketch& other);
};

/// Reusable scratch buffers for numeric ingestion, so hot loops never
/// allocate per call. One instance per worker thread; pass it to every
/// Accumulate call that thread makes.
struct IngestScratch {
  std::vector<double> values;       ///< Compacted valid values of one block.
  std::vector<uint32_t> local_rows; ///< Panel-local rows of those values.
  std::vector<double> hyperplane_row;
  std::vector<double> projection_row;
};

/// Ones-side accumulators shared across fully-valid columns: ones_dot and
/// projection_ones depend only on the ROW SET, not on column values, so one
/// partition-wide accumulation serves every column with zero nulls.
struct SharedOnes {
  std::vector<double> hyperplane_ones;
  std::vector<double> projection_ones;
};

/// Builds sketch bundles for whole columns (single pass each) or row ranges
/// (for composition tests / partitioned preprocessing).
class BundleBuilder {
 public:
  BundleBuilder(const SketchConfig& config, size_t n_rows);

  const SketchConfig& config() const { return config_; }
  size_t hyperplane_bits() const { return hyperplane_bits_; }
  const HyperplaneSketcher& hyperplane_sketcher() const {
    return hyperplane_sketcher_;
  }
  const ProjectionSketcher& projection_sketcher() const {
    return projection_sketcher_;
  }

  /// Creates empty sketches sized per the config.
  NumericColumnSketch MakeNumericSketch() const;
  CategoricalColumnSketch MakeCategoricalSketch() const;

  /// Folds rows [row_offset, ...) of a column into a sketch. Null rows are
  /// skipped for value sketches but still advance the absolute row index, so
  /// hyperplane/projection components stay row-aligned across columns.
  /// `scratch` (optional) supplies reusable row buffers so repeated calls
  /// don't reallocate.
  void AccumulateNumeric(const NumericColumn& column, size_t row_begin,
                         size_t row_end, NumericColumnSketch& sketch,
                         IngestScratch* scratch = nullptr) const;

  /// Panel-blocked ingestion of rows [row_begin, row_end), which must lie
  /// inside `panel`'s row range. Bit-identical to AccumulateNumeric over the
  /// same rows: value sketches see values in row order and every dot/ones
  /// accumulator receives one addition per valid row in ascending row order.
  /// With `skip_ones` true the ones-side accumulators are left untouched —
  /// only valid for columns with zero nulls, where the caller applies a
  /// SharedOnes partition total instead (see AccumulateSharedOnes).
  void AccumulateNumericBlocked(const NumericColumn& column,
                                const RandomPanelBlock& panel,
                                size_t row_begin, size_t row_end,
                                NumericColumnSketch& sketch,
                                IngestScratch& scratch,
                                bool skip_ones = false) const;

  /// Panel-blocked ingestion for a group of fully-valid (zero-null) columns
  /// over one panel span. Equivalent to AccumulateNumericBlocked with
  /// skip_ones=true per column — value sketches are fed per column in row
  /// order and each accumulator receives the identical addition sequence —
  /// but the dense kernels sweep each panel slab once per group of four
  /// columns instead of once per column, keeping it hot in L1.
  void AccumulateNumericBlockedGroup(const NumericColumn* const* columns,
                                     NumericColumnSketch* const* sketches,
                                     size_t num_columns,
                                     const RandomPanelBlock& panel,
                                     size_t row_begin, size_t row_end) const;

  /// Accumulates the ones-side contribution of rows [row_begin, row_end)
  /// (inside `panel`) into `ones`, sized/zeroed on first use. Streaming the
  /// same blocks in the same order as a fully-valid column's row loop makes
  /// the result bit-identical to that column's own ones accumulation.
  void AccumulateSharedOnes(const RandomPanelBlock& panel, size_t row_begin,
                            size_t row_end, SharedOnes& ones) const;

  /// Copies a finished SharedOnes total into a fully-valid column's sketch.
  void ApplySharedOnes(const SharedOnes& ones,
                       NumericColumnSketch& sketch) const;

  /// Row-major fast path: folds one value into a sketch given this row's
  /// pre-generated hyperplane and projection components. Generating each
  /// row's random components ONCE and applying them to every column is what
  /// makes whole-table preprocessing a single O(|B| * n * k) pass (§3)
  /// instead of regenerating the components |B| times.
  void AccumulateRowValue(double value, const std::vector<double>& hyperplane_row,
                          const std::vector<double>& projection_row,
                          NumericColumnSketch& sketch) const;
  void AccumulateCategorical(const CategoricalColumn& column, size_t row_begin,
                             size_t row_end,
                             CategoricalColumnSketch& sketch) const;

  /// Finalizes the hyperplane signature once all rows are accumulated.
  void FinalizeNumeric(NumericColumnSketch& sketch) const;

  /// One-shot: sketch a full column.
  NumericColumnSketch SketchNumeric(const NumericColumn& column) const;
  CategoricalColumnSketch SketchCategorical(
      const CategoricalColumn& column) const;

 private:
  SketchConfig config_;
  size_t hyperplane_bits_;
  HyperplaneSketcher hyperplane_sketcher_;
  ProjectionSketcher projection_sketcher_;
  double projection_scale_;  ///< 1/sqrt(projection_dims), hoisted off the row loop.
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_BUNDLE_H_
