#ifndef FORESIGHT_SKETCH_RANDOM_PROJECTION_H_
#define FORESIGHT_SKETCH_RANDOM_PROJECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace foresight {

/// Johnson–Lindenstrauss random projection sketch — the paper's "random
/// projection sketch" (§3). Each n-dimensional column b is mapped to
/// y = R b / sqrt(k) with Gaussian R shared across columns (deterministic per
/// (seed, row)), preserving inner products and Euclidean norms in expectation:
///   E[<y_a, y_b>] = <a, b>,  E[||y||^2] = ||b||^2.
/// Projections over disjoint row ranges merge by vector addition
/// (composability, §3). Complements the hyperplane sketch: hyperplanes give
/// correlation *signs/angles* in O(k) bits, projections give magnitudes.
class ProjectionSketch {
 public:
  ProjectionSketch() = default;
  explicit ProjectionSketch(size_t k) : components_(k, 0.0) {}

  size_t k() const { return components_.size(); }
  const std::vector<double>& components() const { return components_; }
  std::vector<double>& mutable_components() { return components_; }

  /// Adds a projection over a disjoint row range.
  void Merge(const ProjectionSketch& other);

  /// Estimated squared Euclidean norm of the original column.
  double EstimateSquaredNorm() const;

  /// Estimated inner product of the original columns.
  static double EstimateDot(const ProjectionSketch& a,
                            const ProjectionSketch& b);

  /// Estimated squared Euclidean distance between the original columns.
  static double EstimateSquaredDistance(const ProjectionSketch& a,
                                        const ProjectionSketch& b);

  /// Estimated Pearson correlation from projections of the *centered*
  /// columns: <a~, b~> / (||a~|| * ||b~||). An alternative rho estimator to
  /// the hyperplane sketch, with magnitude information retained.
  static double EstimateCorrelation(const ProjectionSketch& a,
                                    const ProjectionSketch& b);

 private:
  std::vector<double> components_;
};

/// Factory generating the shared Gaussian projection matrix rows on demand.
class ProjectionSketcher {
 public:
  ProjectionSketcher(size_t k, uint64_t seed);

  size_t k() const { return k_; }

  /// Accumulates rows [row_offset, row_offset + values.size()). Subtracts
  /// `mean` from every value so the projection is of the centered column
  /// (pass 0 for raw columns). O(values.size() * k).
  void AccumulateRange(const std::vector<double>& values, size_t row_offset,
                       double mean, ProjectionSketch& sketch) const;

  /// One-shot convenience over a whole column.
  ProjectionSketch Sketch(const std::vector<double>& values,
                          double mean = 0.0) const;

  /// Gaussian projection components for one absolute row (size k); shared
  /// across all columns sketched with the same (k, seed).
  void GenerateRowComponents(size_t row, std::vector<double>& out) const;

  /// Same, writing into a raw buffer of k doubles (panel materialization).
  void GenerateRowComponents(size_t row, double* out) const;

  /// Blocked accumulation against a pre-generated projection panel (row-major
  /// with stride k; panel row j starts at panel + j * k). When `local_rows`
  /// is null, values[j] pairs with panel row j; otherwise with panel row
  /// local_rows[j]. Accumulates, for each row j in ascending order,
  ///   components[i] += (values[j] * scale) * panel[local_row(j)][i]
  /// with the per-row scaled value computed first — the exact operation
  /// order of the row-at-a-time path, so results are bit-identical.
  void AccumulateValuesBlock(const double* panel, const uint32_t* local_rows,
                             const double* values, size_t count, double scale,
                             double* components) const;

  /// Ones-side counterpart: components[i] += scale * panel[local_row(j)][i].
  /// Row-set-only (no column values), so callers can run it once per row
  /// range and copy the result into every fully-valid column bit-identically.
  void AccumulateOnesBlock(const double* panel, const uint32_t* local_rows,
                           size_t count, double scale,
                           double* components) const;

 private:
  size_t k_;
  uint64_t seed_;
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_RANDOM_PROJECTION_H_
