#ifndef FORESIGHT_SKETCH_SERIALIZE_H_
#define FORESIGHT_SKETCH_SERIALIZE_H_

#include "sketch/bundle.h"
#include "util/json.h"
#include "util/status.h"

namespace foresight {

/// JSON (de)serialization for every sketch and for whole column bundles.
///
/// Preprocessing is the expensive step (§3); persisting the sketch state lets
/// a deployment preprocess once and serve many exploration sessions. The
/// format is versioned JSON: self-describing, diff-able, and stable across
/// platforms (bit signatures are hex-encoded words; doubles round-trip via
/// 17-digit decimal).
///
/// Free functions rather than members keep the sketch classes free of any
/// serialization dependency.

JsonValue MomentsToJson(const RunningMoments& moments);
StatusOr<RunningMoments> MomentsFromJson(const JsonValue& json);

JsonValue KllToJson(const KllSketch& sketch);
StatusOr<KllSketch> KllFromJson(const JsonValue& json);

JsonValue ReservoirToJson(const ReservoirSample& sample);
StatusOr<ReservoirSample> ReservoirFromJson(const JsonValue& json);

JsonValue SignatureToJson(const BitSignature& signature);
StatusOr<BitSignature> SignatureFromJson(const JsonValue& json);

JsonValue HyperplaneAccToJson(const HyperplaneAccumulator& acc);
StatusOr<HyperplaneAccumulator> HyperplaneAccFromJson(const JsonValue& json);

JsonValue ProjectionToJson(const ProjectionSketch& sketch);
StatusOr<ProjectionSketch> ProjectionFromJson(const JsonValue& json);

JsonValue SpaceSavingToJson(const SpaceSavingSketch& sketch);
StatusOr<SpaceSavingSketch> SpaceSavingFromJson(const JsonValue& json);

JsonValue CountMinToJson(const CountMinSketch& sketch);
StatusOr<CountMinSketch> CountMinFromJson(const JsonValue& json);

JsonValue EntropyToJson(const EntropySketch& sketch);
StatusOr<EntropySketch> EntropyFromJson(const JsonValue& json);

JsonValue NumericSketchToJson(const NumericColumnSketch& sketch);
StatusOr<NumericColumnSketch> NumericSketchFromJson(const JsonValue& json);

JsonValue CategoricalSketchToJson(const CategoricalColumnSketch& sketch);
StatusOr<CategoricalColumnSketch> CategoricalSketchFromJson(
    const JsonValue& json);

JsonValue SketchConfigToJson(const SketchConfig& config);
StatusOr<SketchConfig> SketchConfigFromJson(const JsonValue& json);

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_SERIALIZE_H_
