#include "sketch/serialize.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace foresight {

namespace {

/// uint64 values can exceed the double mantissa, so they are serialized as
/// decimal strings.
JsonValue U64(uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return JsonValue(std::string(buffer));
}

StatusOr<uint64_t> ParseU64(const JsonValue* json, const char* field) {
  if (json == nullptr) {
    return Status::ParseError(std::string("missing field: ") + field);
  }
  if (json->is_number()) {
    return static_cast<uint64_t>(json->as_number());
  }
  if (!json->is_string()) {
    return Status::ParseError(std::string("field not u64: ") + field);
  }
  char* end = nullptr;
  uint64_t value = std::strtoull(json->as_string().c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::ParseError(std::string("bad u64 value in field: ") + field);
  }
  return value;
}

StatusOr<double> ParseNumber(const JsonValue* json, const char* field) {
  if (json == nullptr || !json->is_number()) {
    return Status::ParseError(std::string("missing numeric field: ") + field);
  }
  return json->as_number();
}

StatusOr<std::vector<double>> ParseDoubleArray(const JsonValue* json,
                                               const char* field) {
  if (json == nullptr || !json->is_array()) {
    return Status::ParseError(std::string("missing array field: ") + field);
  }
  std::vector<double> out;
  out.reserve(json->size());
  for (size_t i = 0; i < json->size(); ++i) {
    if (!json->at(i).is_number()) {
      return Status::ParseError(std::string("non-numeric entry in ") + field);
    }
    out.push_back(json->at(i).as_number());
  }
  return out;
}

JsonValue DoubleArray(const std::vector<double>& values) {
  JsonValue array = JsonValue::Array();
  for (double v : values) array.Append(v);
  return array;
}

}  // namespace

JsonValue MomentsToJson(const RunningMoments& moments) {
  JsonValue json = JsonValue::Object();
  json.Set("n", U64(moments.count()));
  json.Set("mean", moments.mean());
  json.Set("m2", moments.m2());
  json.Set("m3", moments.m3());
  json.Set("m4", moments.m4());
  json.Set("min", moments.min());
  json.Set("max", moments.max());
  return json;
}

StatusOr<RunningMoments> MomentsFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t n, ParseU64(json.Get("n"), "n"));
  FORESIGHT_ASSIGN_OR_RETURN(double mean, ParseNumber(json.Get("mean"), "mean"));
  FORESIGHT_ASSIGN_OR_RETURN(double m2, ParseNumber(json.Get("m2"), "m2"));
  FORESIGHT_ASSIGN_OR_RETURN(double m3, ParseNumber(json.Get("m3"), "m3"));
  FORESIGHT_ASSIGN_OR_RETURN(double m4, ParseNumber(json.Get("m4"), "m4"));
  FORESIGHT_ASSIGN_OR_RETURN(double min, ParseNumber(json.Get("min"), "min"));
  FORESIGHT_ASSIGN_OR_RETURN(double max, ParseNumber(json.Get("max"), "max"));
  return RunningMoments::FromRaw(static_cast<size_t>(n), mean, m2, m3, m4, min,
                                 max);
}

JsonValue KllToJson(const KllSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("k", sketch.k_param());
  json.Set("rng_state", U64(sketch.rng_state()));
  json.Set("count", U64(sketch.count()));
  json.Set("min", sketch.min());
  json.Set("max", sketch.max());
  JsonValue levels = JsonValue::Array();
  for (const auto& level : sketch.levels()) {
    levels.Append(DoubleArray(level));
  }
  json.Set("levels", std::move(levels));
  return json;
}

StatusOr<KllSketch> KllFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t k, ParseU64(json.Get("k"), "k"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t rng_state,
                             ParseU64(json.Get("rng_state"), "rng_state"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t count,
                             ParseU64(json.Get("count"), "count"));
  FORESIGHT_ASSIGN_OR_RETURN(double min, ParseNumber(json.Get("min"), "min"));
  FORESIGHT_ASSIGN_OR_RETURN(double max, ParseNumber(json.Get("max"), "max"));
  const JsonValue* levels_json = json.Get("levels");
  if (levels_json == nullptr || !levels_json->is_array()) {
    return Status::ParseError("missing KLL levels");
  }
  std::vector<std::vector<double>> levels;
  for (size_t l = 0; l < levels_json->size(); ++l) {
    FORESIGHT_ASSIGN_OR_RETURN(std::vector<double> level,
                               ParseDoubleArray(&levels_json->at(l), "level"));
    levels.push_back(std::move(level));
  }
  return KllSketch::FromRaw(static_cast<size_t>(k), rng_state, count, min, max,
                            std::move(levels));
}

JsonValue ReservoirToJson(const ReservoirSample& sample) {
  JsonValue json = JsonValue::Object();
  json.Set("capacity", sample.capacity());
  json.Set("seen", U64(sample.seen()));
  json.Set("values", DoubleArray(sample.values()));
  return json;
}

StatusOr<ReservoirSample> ReservoirFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t capacity,
                             ParseU64(json.Get("capacity"), "capacity"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t seen, ParseU64(json.Get("seen"), "seen"));
  FORESIGHT_ASSIGN_OR_RETURN(std::vector<double> values,
                             ParseDoubleArray(json.Get("values"), "values"));
  return ReservoirSample::FromRaw(static_cast<size_t>(capacity),
                                  /*seed=*/capacity * 2654435761u + seen, seen,
                                  std::move(values));
}

JsonValue SignatureToJson(const BitSignature& signature) {
  JsonValue json = JsonValue::Object();
  json.Set("bits", signature.num_bits());
  JsonValue words = JsonValue::Array();
  for (uint64_t word : signature.words()) {
    char buffer[20];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, word);
    words.Append(std::string(buffer));
  }
  json.Set("words", std::move(words));
  return json;
}

StatusOr<BitSignature> SignatureFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t bits, ParseU64(json.Get("bits"), "bits"));
  const JsonValue* words_json = json.Get("words");
  if (words_json == nullptr || !words_json->is_array()) {
    return Status::ParseError("missing signature words");
  }
  std::vector<uint64_t> words;
  words.reserve(words_json->size());
  for (size_t i = 0; i < words_json->size(); ++i) {
    if (!words_json->at(i).is_string()) {
      return Status::ParseError("signature word not a hex string");
    }
    char* end = nullptr;
    words.push_back(std::strtoull(words_json->at(i).as_string().c_str(), &end, 16));
    if (end == nullptr || *end != '\0') {
      return Status::ParseError("bad signature hex word");
    }
  }
  if (words.size() != (bits + 63) / 64) {
    return Status::ParseError("signature word count mismatch");
  }
  return BitSignature::FromWords(static_cast<size_t>(bits), std::move(words));
}

JsonValue HyperplaneAccToJson(const HyperplaneAccumulator& acc) {
  JsonValue json = JsonValue::Object();
  json.Set("dot", DoubleArray(acc.dot));
  json.Set("ones_dot", DoubleArray(acc.ones_dot));
  return json;
}

StatusOr<HyperplaneAccumulator> HyperplaneAccFromJson(const JsonValue& json) {
  HyperplaneAccumulator acc;
  FORESIGHT_ASSIGN_OR_RETURN(acc.dot, ParseDoubleArray(json.Get("dot"), "dot"));
  FORESIGHT_ASSIGN_OR_RETURN(
      acc.ones_dot, ParseDoubleArray(json.Get("ones_dot"), "ones_dot"));
  if (acc.dot.size() != acc.ones_dot.size()) {
    return Status::ParseError("hyperplane accumulator size mismatch");
  }
  return acc;
}

JsonValue ProjectionToJson(const ProjectionSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("components", DoubleArray(sketch.components()));
  return json;
}

StatusOr<ProjectionSketch> ProjectionFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(
      std::vector<double> components,
      ParseDoubleArray(json.Get("components"), "components"));
  ProjectionSketch sketch(components.size());
  sketch.mutable_components() = std::move(components);
  return sketch;
}

JsonValue SpaceSavingToJson(const SpaceSavingSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("capacity", sketch.capacity());
  json.Set("total", U64(sketch.total_count()));
  JsonValue counters = JsonValue::Array();
  for (const auto& [item, ce] : sketch.counters()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("item", item);
    entry.Set("count", U64(ce.first));
    entry.Set("error", U64(ce.second));
    counters.Append(std::move(entry));
  }
  json.Set("counters", std::move(counters));
  return json;
}

StatusOr<SpaceSavingSketch> SpaceSavingFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t capacity,
                             ParseU64(json.Get("capacity"), "capacity"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t total, ParseU64(json.Get("total"), "total"));
  const JsonValue* counters_json = json.Get("counters");
  if (counters_json == nullptr || !counters_json->is_array()) {
    return Status::ParseError("missing SpaceSaving counters");
  }
  std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> counters;
  for (size_t i = 0; i < counters_json->size(); ++i) {
    const JsonValue& entry = counters_json->at(i);
    const JsonValue* item = entry.Get("item");
    if (item == nullptr || !item->is_string()) {
      return Status::ParseError("SpaceSaving counter missing item");
    }
    FORESIGHT_ASSIGN_OR_RETURN(uint64_t count,
                               ParseU64(entry.Get("count"), "count"));
    FORESIGHT_ASSIGN_OR_RETURN(uint64_t error,
                               ParseU64(entry.Get("error"), "error"));
    counters[item->as_string()] = {count, error};
  }
  return SpaceSavingSketch::FromRaw(static_cast<size_t>(capacity), total,
                                    std::move(counters));
}

JsonValue CountMinToJson(const CountMinSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("width", sketch.width());
  json.Set("depth", sketch.depth());
  json.Set("seed", U64(sketch.seed()));
  json.Set("total", U64(sketch.total_count()));
  JsonValue cells = JsonValue::Array();
  for (uint64_t c : sketch.cells()) cells.Append(U64(c));
  json.Set("cells", std::move(cells));
  return json;
}

StatusOr<CountMinSketch> CountMinFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t width, ParseU64(json.Get("width"), "width"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t depth, ParseU64(json.Get("depth"), "depth"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t seed, ParseU64(json.Get("seed"), "seed"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t total, ParseU64(json.Get("total"), "total"));
  const JsonValue* cells_json = json.Get("cells");
  if (cells_json == nullptr || !cells_json->is_array()) {
    return Status::ParseError("missing CountMin cells");
  }
  std::vector<uint64_t> cells;
  cells.reserve(cells_json->size());
  for (size_t i = 0; i < cells_json->size(); ++i) {
    FORESIGHT_ASSIGN_OR_RETURN(uint64_t cell,
                               ParseU64(&cells_json->at(i), "cell"));
    cells.push_back(cell);
  }
  return CountMinSketch::FromRaw(static_cast<size_t>(width),
                                 static_cast<size_t>(depth), seed, total,
                                 std::move(cells));
}

JsonValue EntropyToJson(const EntropySketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("k", sketch.k());
  json.Set("seed", U64(sketch.seed()));
  json.Set("total", U64(sketch.total_count()));
  json.Set("registers", DoubleArray(sketch.registers()));
  return json;
}

StatusOr<EntropySketch> EntropyFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t k, ParseU64(json.Get("k"), "k"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t seed, ParseU64(json.Get("seed"), "seed"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t total, ParseU64(json.Get("total"), "total"));
  FORESIGHT_ASSIGN_OR_RETURN(
      std::vector<double> registers,
      ParseDoubleArray(json.Get("registers"), "registers"));
  return EntropySketch::FromRaw(static_cast<size_t>(k), seed, total,
                                std::move(registers));
}

JsonValue NumericSketchToJson(const NumericColumnSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("moments", MomentsToJson(sketch.moments));
  json.Set("quantiles", KllToJson(sketch.quantiles));
  json.Set("sample", ReservoirToJson(sketch.sample));
  json.Set("hyperplane_acc", HyperplaneAccToJson(sketch.hyperplane_acc));
  json.Set("signature", SignatureToJson(sketch.signature));
  json.Set("projection", ProjectionToJson(sketch.projection));
  json.Set("projection_ones", ProjectionToJson(sketch.projection_ones));
  return json;
}

StatusOr<NumericColumnSketch> NumericSketchFromJson(const JsonValue& json) {
  NumericColumnSketch sketch;
  const JsonValue* field = json.Get("moments");
  if (field == nullptr) return Status::ParseError("missing moments");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.moments, MomentsFromJson(*field));
  field = json.Get("quantiles");
  if (field == nullptr) return Status::ParseError("missing quantiles");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.quantiles, KllFromJson(*field));
  field = json.Get("sample");
  if (field == nullptr) return Status::ParseError("missing sample");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.sample, ReservoirFromJson(*field));
  field = json.Get("hyperplane_acc");
  if (field == nullptr) return Status::ParseError("missing hyperplane_acc");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.hyperplane_acc,
                             HyperplaneAccFromJson(*field));
  field = json.Get("signature");
  if (field == nullptr) return Status::ParseError("missing signature");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.signature, SignatureFromJson(*field));
  field = json.Get("projection");
  if (field == nullptr) return Status::ParseError("missing projection");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.projection, ProjectionFromJson(*field));
  field = json.Get("projection_ones");
  if (field == nullptr) return Status::ParseError("missing projection_ones");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.projection_ones,
                             ProjectionFromJson(*field));
  return sketch;
}

JsonValue CategoricalSketchToJson(const CategoricalColumnSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("heavy_hitters", SpaceSavingToJson(sketch.heavy_hitters));
  json.Set("frequencies", CountMinToJson(sketch.frequencies));
  json.Set("entropy", EntropyToJson(sketch.entropy));
  json.Set("observed_count", U64(sketch.observed_count));
  return json;
}

StatusOr<CategoricalColumnSketch> CategoricalSketchFromJson(
    const JsonValue& json) {
  CategoricalColumnSketch sketch;
  const JsonValue* field = json.Get("heavy_hitters");
  if (field == nullptr) return Status::ParseError("missing heavy_hitters");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.heavy_hitters, SpaceSavingFromJson(*field));
  field = json.Get("frequencies");
  if (field == nullptr) return Status::ParseError("missing frequencies");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.frequencies, CountMinFromJson(*field));
  field = json.Get("entropy");
  if (field == nullptr) return Status::ParseError("missing entropy");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.entropy, EntropyFromJson(*field));
  FORESIGHT_ASSIGN_OR_RETURN(
      uint64_t observed, ParseU64(json.Get("observed_count"), "observed_count"));
  sketch.observed_count = observed;
  return sketch;
}

JsonValue SketchConfigToJson(const SketchConfig& config) {
  JsonValue json = JsonValue::Object();
  json.Set("hyperplane_bits", config.hyperplane_bits);
  json.Set("hyperplane_log2_factor", config.hyperplane_log2_factor);
  json.Set("projection_dims", config.projection_dims);
  json.Set("kll_k", config.kll_k);
  json.Set("reservoir_capacity", config.reservoir_capacity);
  json.Set("spacesaving_capacity", config.spacesaving_capacity);
  json.Set("countmin_width", config.countmin_width);
  json.Set("countmin_depth", config.countmin_depth);
  json.Set("entropy_k", config.entropy_k);
  json.Set("seed", U64(config.seed));
  return json;
}

StatusOr<SketchConfig> SketchConfigFromJson(const JsonValue& json) {
  SketchConfig config;
  FORESIGHT_ASSIGN_OR_RETURN(
      uint64_t bits, ParseU64(json.Get("hyperplane_bits"), "hyperplane_bits"));
  config.hyperplane_bits = static_cast<size_t>(bits);
  FORESIGHT_ASSIGN_OR_RETURN(config.hyperplane_log2_factor,
                             ParseNumber(json.Get("hyperplane_log2_factor"),
                                         "hyperplane_log2_factor"));
  FORESIGHT_ASSIGN_OR_RETURN(
      uint64_t proj, ParseU64(json.Get("projection_dims"), "projection_dims"));
  config.projection_dims = static_cast<size_t>(proj);
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t kll, ParseU64(json.Get("kll_k"), "kll_k"));
  config.kll_k = static_cast<size_t>(kll);
  FORESIGHT_ASSIGN_OR_RETURN(
      uint64_t reservoir,
      ParseU64(json.Get("reservoir_capacity"), "reservoir_capacity"));
  config.reservoir_capacity = static_cast<size_t>(reservoir);
  FORESIGHT_ASSIGN_OR_RETURN(
      uint64_t spacesaving,
      ParseU64(json.Get("spacesaving_capacity"), "spacesaving_capacity"));
  config.spacesaving_capacity = static_cast<size_t>(spacesaving);
  FORESIGHT_ASSIGN_OR_RETURN(
      uint64_t width, ParseU64(json.Get("countmin_width"), "countmin_width"));
  config.countmin_width = static_cast<size_t>(width);
  FORESIGHT_ASSIGN_OR_RETURN(
      uint64_t depth, ParseU64(json.Get("countmin_depth"), "countmin_depth"));
  config.countmin_depth = static_cast<size_t>(depth);
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t entropy,
                             ParseU64(json.Get("entropy_k"), "entropy_k"));
  config.entropy_k = static_cast<size_t>(entropy);
  FORESIGHT_ASSIGN_OR_RETURN(config.seed, ParseU64(json.Get("seed"), "seed"));
  return config;
}

}  // namespace foresight
