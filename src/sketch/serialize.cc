#include "sketch/serialize.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace foresight {

namespace {

/// Parse-layer sanity bounds for untrusted documents. Legitimate sketches sit
/// far below these; a corrupt or adversarial document must not be able to
/// trigger huge allocations (sketch constructors size buffers from these
/// fields), shift UB (KLL level weights are `1 << level`), or overflow in the
/// geometry checks that run before buffers are filled.
constexpr uint64_t kMaxSketchDimension = uint64_t{1} << 26;
constexpr size_t kMaxKllLevels = 64;

/// uint64 values can exceed the double mantissa, so they are serialized as
/// decimal strings.
JsonValue U64(uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return JsonValue(std::string(buffer));
}

StatusOr<uint64_t> U64FromDouble(double d, const char* field) {
  // Reject NaN (the !(d >= 0) form), negatives, fractions, and values at or
  // beyond 2^64: casting any of those to uint64_t is undefined behavior.
  if (!(d >= 0.0) || d >= 18446744073709551616.0 || d != std::floor(d)) {
    return Status::ParseError(std::string("field not a valid u64: ") + field);
  }
  return static_cast<uint64_t>(d);
}

StatusOr<uint64_t> ParseU64(const JsonValue* json, const char* field) {
  if (json == nullptr) {
    return Status::ParseError(std::string("missing field: ") + field);
  }
  if (json->is_number()) {
    return U64FromDouble(json->as_number(), field);
  }
  if (!json->is_string()) {
    return Status::ParseError(std::string("field not u64: ") + field);
  }
  // Strict decimal parse: digits only, no sign/whitespace/base prefixes
  // (strtoull would silently accept "-1" by wrapping), overflow rejected.
  const std::string& text = json->as_string();
  if (text.empty() || text.size() > 20) {
    return Status::ParseError(std::string("bad u64 value in field: ") + field);
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::ParseError(std::string("bad u64 value in field: ") +
                                field);
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::ParseError(std::string("u64 overflow in field: ") + field);
    }
    value = value * 10 + digit;
  }
  return value;
}

/// Parses a u64 used as an allocation size or array geometry and enforces the
/// parse-layer sanity bound.
StatusOr<size_t> ParseBoundedSize(const JsonValue* json, const char* field,
                                  uint64_t max_value = kMaxSketchDimension) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t value, ParseU64(json, field));
  if (value > max_value) {
    return Status::ParseError(std::string("field exceeds sanity bound: ") +
                              field);
  }
  return static_cast<size_t>(value);
}

StatusOr<double> ParseNumber(const JsonValue* json, const char* field) {
  if (json == nullptr || !json->is_number()) {
    return Status::ParseError(std::string("missing numeric field: ") + field);
  }
  return json->as_number();
}

StatusOr<std::vector<double>> ParseDoubleArray(const JsonValue* json,
                                               const char* field) {
  if (json == nullptr || !json->is_array()) {
    return Status::ParseError(std::string("missing array field: ") + field);
  }
  // Snapshot-decoded (and freshly serialized) documents keep number arrays
  // packed; copying the vector skips 2 JsonValue node walks per element.
  if (const std::vector<double>* packed = json->packed_numbers()) {
    return *packed;
  }
  std::vector<double> out;
  out.reserve(json->size());
  for (size_t i = 0; i < json->size(); ++i) {
    if (!json->at(i).is_number()) {
      return Status::ParseError(std::string("non-numeric entry in ") + field);
    }
    out.push_back(json->at(i).as_number());
  }
  return out;
}

JsonValue DoubleArray(const std::vector<double>& values) {
  return JsonValue::PackedNumberArray(values);
}

}  // namespace

JsonValue MomentsToJson(const RunningMoments& moments) {
  JsonValue json = JsonValue::Object();
  json.Set("n", U64(moments.count()));
  json.Set("mean", moments.mean());
  json.Set("m2", moments.m2());
  json.Set("m3", moments.m3());
  json.Set("m4", moments.m4());
  json.Set("min", moments.min());
  json.Set("max", moments.max());
  return json;
}

StatusOr<RunningMoments> MomentsFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t n, ParseU64(json.Get("n"), "n"));
  FORESIGHT_ASSIGN_OR_RETURN(double mean, ParseNumber(json.Get("mean"), "mean"));
  FORESIGHT_ASSIGN_OR_RETURN(double m2, ParseNumber(json.Get("m2"), "m2"));
  FORESIGHT_ASSIGN_OR_RETURN(double m3, ParseNumber(json.Get("m3"), "m3"));
  FORESIGHT_ASSIGN_OR_RETURN(double m4, ParseNumber(json.Get("m4"), "m4"));
  FORESIGHT_ASSIGN_OR_RETURN(double min, ParseNumber(json.Get("min"), "min"));
  FORESIGHT_ASSIGN_OR_RETURN(double max, ParseNumber(json.Get("max"), "max"));
  return RunningMoments::FromRaw(static_cast<size_t>(n), mean, m2, m3, m4, min,
                                 max);
}

JsonValue KllToJson(const KllSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("k", sketch.k_param());
  json.Set("rng_state", U64(sketch.rng_state()));
  json.Set("count", U64(sketch.count()));
  json.Set("min", sketch.min());
  json.Set("max", sketch.max());
  JsonValue levels = JsonValue::Array();
  for (const auto& level : sketch.levels()) {
    levels.Append(DoubleArray(level));
  }
  json.Set("levels", std::move(levels));
  return json;
}

StatusOr<KllSketch> KllFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(size_t k, ParseBoundedSize(json.Get("k"), "k"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t rng_state,
                             ParseU64(json.Get("rng_state"), "rng_state"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t count,
                             ParseU64(json.Get("count"), "count"));
  FORESIGHT_ASSIGN_OR_RETURN(double min, ParseNumber(json.Get("min"), "min"));
  FORESIGHT_ASSIGN_OR_RETURN(double max, ParseNumber(json.Get("max"), "max"));
  const JsonValue* levels_json = json.Get("levels");
  if (levels_json == nullptr || !levels_json->is_array()) {
    return Status::ParseError("missing KLL levels");
  }
  // Level weights are computed as `1 << level`; more than 64 levels would be
  // shift UB (and no real stream produces them).
  if (levels_json->size() > kMaxKllLevels) {
    return Status::ParseError("too many KLL levels");
  }
  std::vector<std::vector<double>> levels;
  for (size_t l = 0; l < levels_json->size(); ++l) {
    FORESIGHT_ASSIGN_OR_RETURN(std::vector<double> level,
                               ParseDoubleArray(&levels_json->at(l), "level"));
    levels.push_back(std::move(level));
  }
  return KllSketch::FromRaw(k, rng_state, count, min, max, std::move(levels));
}

JsonValue ReservoirToJson(const ReservoirSample& sample) {
  JsonValue json = JsonValue::Object();
  json.Set("capacity", sample.capacity());
  json.Set("seen", U64(sample.seen()));
  json.Set("values", DoubleArray(sample.values()));
  return json;
}

StatusOr<ReservoirSample> ReservoirFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(size_t capacity,
                             ParseBoundedSize(json.Get("capacity"), "capacity"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t seen, ParseU64(json.Get("seen"), "seen"));
  FORESIGHT_ASSIGN_OR_RETURN(std::vector<double> values,
                             ParseDoubleArray(json.Get("values"), "values"));
  // A reservoir never holds more than its capacity, and never more values
  // than stream elements observed; a document claiming either is corrupt.
  if (values.size() > capacity) {
    return Status::ParseError("reservoir holds more values than capacity");
  }
  if (values.size() > seen) {
    return Status::ParseError("reservoir holds more values than seen");
  }
  return ReservoirSample::FromRaw(capacity,
                                  /*seed=*/capacity * 2654435761u + seen, seen,
                                  std::move(values));
}

JsonValue SignatureToJson(const BitSignature& signature) {
  JsonValue json = JsonValue::Object();
  json.Set("bits", signature.num_bits());
  JsonValue words = JsonValue::Array();
  for (uint64_t word : signature.words()) {
    char buffer[20];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, word);
    words.Append(std::string(buffer));
  }
  json.Set("words", std::move(words));
  return json;
}

StatusOr<BitSignature> SignatureFromJson(const JsonValue& json) {
  // Bounding `bits` first keeps the `(bits + 63) / 64` geometry check below
  // overflow-free; without it, bits near 2^64 would wrap the expected word
  // count to a tiny value and admit a signature whose advertised width far
  // exceeds its backing words (an over-read for any prefix operation).
  FORESIGHT_ASSIGN_OR_RETURN(size_t bits,
                             ParseBoundedSize(json.Get("bits"), "bits"));
  const JsonValue* words_json = json.Get("words");
  if (words_json == nullptr || !words_json->is_array()) {
    return Status::ParseError("missing signature words");
  }
  std::vector<uint64_t> words;
  words.reserve(words_json->size());
  for (size_t i = 0; i < words_json->size(); ++i) {
    if (!words_json->at(i).is_string()) {
      return Status::ParseError("signature word not a hex string");
    }
    // Strict hex parse: 1-16 hex digits, nothing else (strtoull would accept
    // signs, whitespace, and 0x prefixes).
    const std::string& hex = words_json->at(i).as_string();
    if (hex.empty() || hex.size() > 16) {
      return Status::ParseError("bad signature hex word");
    }
    uint64_t word = 0;
    for (char c : hex) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = c - 'A' + 10;
      } else {
        return Status::ParseError("bad signature hex word");
      }
      word = (word << 4) | static_cast<uint64_t>(digit);
    }
    words.push_back(word);
  }
  if (words.size() != (bits + 63) / 64) {
    return Status::ParseError("signature word count mismatch");
  }
  return BitSignature::FromWords(bits, std::move(words));
}

JsonValue HyperplaneAccToJson(const HyperplaneAccumulator& acc) {
  JsonValue json = JsonValue::Object();
  json.Set("dot", DoubleArray(acc.dot));
  json.Set("ones_dot", DoubleArray(acc.ones_dot));
  return json;
}

StatusOr<HyperplaneAccumulator> HyperplaneAccFromJson(const JsonValue& json) {
  HyperplaneAccumulator acc;
  FORESIGHT_ASSIGN_OR_RETURN(acc.dot, ParseDoubleArray(json.Get("dot"), "dot"));
  FORESIGHT_ASSIGN_OR_RETURN(
      acc.ones_dot, ParseDoubleArray(json.Get("ones_dot"), "ones_dot"));
  if (acc.dot.size() != acc.ones_dot.size()) {
    return Status::ParseError("hyperplane accumulator size mismatch");
  }
  return acc;
}

JsonValue ProjectionToJson(const ProjectionSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("components", DoubleArray(sketch.components()));
  return json;
}

StatusOr<ProjectionSketch> ProjectionFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(
      std::vector<double> components,
      ParseDoubleArray(json.Get("components"), "components"));
  ProjectionSketch sketch(components.size());
  sketch.mutable_components() = std::move(components);
  return sketch;
}

JsonValue SpaceSavingToJson(const SpaceSavingSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("capacity", sketch.capacity());
  json.Set("total", U64(sketch.total_count()));
  // Emit counters in lexicographic item order so the serialized sketch is
  // byte-identical regardless of hash-map iteration order.
  std::vector<std::string> items;
  items.reserve(sketch.counters().size());
  // determinism-ok: key collection, sorted before use.
  for (const auto& [item, ce] : sketch.counters()) items.push_back(item);
  std::sort(items.begin(), items.end());
  JsonValue counters = JsonValue::Array();
  for (const std::string& item : items) {
    const auto& ce = sketch.counters().at(item);
    JsonValue entry = JsonValue::Object();
    entry.Set("item", item);
    entry.Set("count", U64(ce.first));
    entry.Set("error", U64(ce.second));
    counters.Append(std::move(entry));
  }
  json.Set("counters", std::move(counters));
  return json;
}

StatusOr<SpaceSavingSketch> SpaceSavingFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(
      size_t capacity, ParseBoundedSize(json.Get("capacity"), "capacity"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t total, ParseU64(json.Get("total"), "total"));
  const JsonValue* counters_json = json.Get("counters");
  if (counters_json == nullptr || !counters_json->is_array()) {
    return Status::ParseError("missing SpaceSaving counters");
  }
  // SpaceSaving maintains at most `capacity` monitored counters.
  if (counters_json->size() > capacity) {
    return Status::ParseError("SpaceSaving counter count exceeds capacity");
  }
  std::unordered_map<std::string, std::pair<uint64_t, uint64_t>> counters;
  for (size_t i = 0; i < counters_json->size(); ++i) {
    const JsonValue& entry = counters_json->at(i);
    const JsonValue* item = entry.Get("item");
    if (item == nullptr || !item->is_string()) {
      return Status::ParseError("SpaceSaving counter missing item");
    }
    FORESIGHT_ASSIGN_OR_RETURN(uint64_t count,
                               ParseU64(entry.Get("count"), "count"));
    FORESIGHT_ASSIGN_OR_RETURN(uint64_t error,
                               ParseU64(entry.Get("error"), "error"));
    counters[item->as_string()] = {count, error};
  }
  return SpaceSavingSketch::FromRaw(capacity, total, std::move(counters));
}

JsonValue CountMinToJson(const CountMinSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("width", sketch.width());
  json.Set("depth", sketch.depth());
  json.Set("seed", U64(sketch.seed()));
  json.Set("total", U64(sketch.total_count()));
  // Cells are per-bucket hit counts, in practice far below 2^53, so they
  // almost always travel as a packed number array (one node instead of
  // thousands of decimal strings). Any cell past exact-double range falls
  // back to the string encoding for the whole array; ParseU64 reads both.
  bool exact_as_doubles = true;
  for (uint64_t c : sketch.cells()) {
    exact_as_doubles = exact_as_doubles && c < (uint64_t{1} << 53);
  }
  if (exact_as_doubles) {
    json.Set("cells",
             JsonValue::PackedNumberArray(std::vector<double>(
                 sketch.cells().begin(), sketch.cells().end())));
  } else {
    JsonValue cells = JsonValue::Array();
    for (uint64_t c : sketch.cells()) cells.Append(U64(c));
    json.Set("cells", std::move(cells));
  }
  return json;
}

StatusOr<CountMinSketch> CountMinFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(size_t width,
                             ParseBoundedSize(json.Get("width"), "width"));
  FORESIGHT_ASSIGN_OR_RETURN(size_t depth,
                             ParseBoundedSize(json.Get("depth"), "depth"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t seed, ParseU64(json.Get("seed"), "seed"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t total, ParseU64(json.Get("total"), "total"));
  const JsonValue* cells_json = json.Get("cells");
  if (cells_json == nullptr || !cells_json->is_array()) {
    return Status::ParseError("missing CountMin cells");
  }
  // Validate the geometry before constructing: the sketch allocates
  // width * depth cells up front, so the product must both match the payload
  // and stay within the sanity bound. Both factors are already bounded, so
  // the product cannot overflow size_t.
  if (width * depth != cells_json->size() ||
      width * depth > kMaxSketchDimension) {
    return Status::ParseError("CountMin cell count does not match geometry");
  }
  std::vector<uint64_t> cells;
  cells.reserve(cells_json->size());
  if (const std::vector<double>* packed = cells_json->packed_numbers()) {
    for (double d : *packed) {
      FORESIGHT_ASSIGN_OR_RETURN(uint64_t cell, U64FromDouble(d, "cell"));
      cells.push_back(cell);
    }
  } else {
    for (size_t i = 0; i < cells_json->size(); ++i) {
      FORESIGHT_ASSIGN_OR_RETURN(uint64_t cell,
                                 ParseU64(&cells_json->at(i), "cell"));
      cells.push_back(cell);
    }
  }
  return CountMinSketch::FromRaw(width, depth, seed, total, std::move(cells));
}

JsonValue EntropyToJson(const EntropySketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("k", sketch.k());
  json.Set("seed", U64(sketch.seed()));
  json.Set("total", U64(sketch.total_count()));
  json.Set("registers", DoubleArray(sketch.registers()));
  return json;
}

StatusOr<EntropySketch> EntropyFromJson(const JsonValue& json) {
  FORESIGHT_ASSIGN_OR_RETURN(size_t k, ParseBoundedSize(json.Get("k"), "k"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t seed, ParseU64(json.Get("seed"), "seed"));
  FORESIGHT_ASSIGN_OR_RETURN(uint64_t total, ParseU64(json.Get("total"), "total"));
  FORESIGHT_ASSIGN_OR_RETURN(
      std::vector<double> registers,
      ParseDoubleArray(json.Get("registers"), "registers"));
  // Validate before constructing: the sketch allocates k registers up front.
  if (registers.size() != k) {
    return Status::ParseError("entropy sketch register count mismatch");
  }
  return EntropySketch::FromRaw(k, seed, total, std::move(registers));
}

JsonValue NumericSketchToJson(const NumericColumnSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("moments", MomentsToJson(sketch.moments));
  json.Set("quantiles", KllToJson(sketch.quantiles));
  json.Set("sample", ReservoirToJson(sketch.sample));
  json.Set("hyperplane_acc", HyperplaneAccToJson(sketch.hyperplane_acc));
  json.Set("signature", SignatureToJson(sketch.signature));
  json.Set("projection", ProjectionToJson(sketch.projection));
  json.Set("projection_ones", ProjectionToJson(sketch.projection_ones));
  return json;
}

StatusOr<NumericColumnSketch> NumericSketchFromJson(const JsonValue& json) {
  NumericColumnSketch sketch;
  const JsonValue* field = json.Get("moments");
  if (field == nullptr) return Status::ParseError("missing moments");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.moments, MomentsFromJson(*field));
  field = json.Get("quantiles");
  if (field == nullptr) return Status::ParseError("missing quantiles");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.quantiles, KllFromJson(*field));
  field = json.Get("sample");
  if (field == nullptr) return Status::ParseError("missing sample");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.sample, ReservoirFromJson(*field));
  field = json.Get("hyperplane_acc");
  if (field == nullptr) return Status::ParseError("missing hyperplane_acc");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.hyperplane_acc,
                             HyperplaneAccFromJson(*field));
  field = json.Get("signature");
  if (field == nullptr) return Status::ParseError("missing signature");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.signature, SignatureFromJson(*field));
  field = json.Get("projection");
  if (field == nullptr) return Status::ParseError("missing projection");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.projection, ProjectionFromJson(*field));
  field = json.Get("projection_ones");
  if (field == nullptr) return Status::ParseError("missing projection_ones");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.projection_ones,
                             ProjectionFromJson(*field));
  // Cross-member consistency: CenteredProjection() combines the two
  // projections component-wise and CHECK-fails on a length mismatch, so a
  // corrupt document must be rejected here, not at query time.
  if (sketch.projection.k() != sketch.projection_ones.k()) {
    return Status::ParseError(
        "projection and projection_ones dimensions differ");
  }
  return sketch;
}

JsonValue CategoricalSketchToJson(const CategoricalColumnSketch& sketch) {
  JsonValue json = JsonValue::Object();
  json.Set("heavy_hitters", SpaceSavingToJson(sketch.heavy_hitters));
  json.Set("frequencies", CountMinToJson(sketch.frequencies));
  json.Set("entropy", EntropyToJson(sketch.entropy));
  json.Set("observed_count", U64(sketch.observed_count));
  return json;
}

StatusOr<CategoricalColumnSketch> CategoricalSketchFromJson(
    const JsonValue& json) {
  CategoricalColumnSketch sketch;
  const JsonValue* field = json.Get("heavy_hitters");
  if (field == nullptr) return Status::ParseError("missing heavy_hitters");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.heavy_hitters, SpaceSavingFromJson(*field));
  field = json.Get("frequencies");
  if (field == nullptr) return Status::ParseError("missing frequencies");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.frequencies, CountMinFromJson(*field));
  field = json.Get("entropy");
  if (field == nullptr) return Status::ParseError("missing entropy");
  FORESIGHT_ASSIGN_OR_RETURN(sketch.entropy, EntropyFromJson(*field));
  FORESIGHT_ASSIGN_OR_RETURN(
      uint64_t observed, ParseU64(json.Get("observed_count"), "observed_count"));
  sketch.observed_count = observed;
  return sketch;
}

JsonValue SketchConfigToJson(const SketchConfig& config) {
  JsonValue json = JsonValue::Object();
  json.Set("hyperplane_bits", config.hyperplane_bits);
  json.Set("hyperplane_log2_factor", config.hyperplane_log2_factor);
  json.Set("projection_dims", config.projection_dims);
  json.Set("kll_k", config.kll_k);
  json.Set("reservoir_capacity", config.reservoir_capacity);
  json.Set("spacesaving_capacity", config.spacesaving_capacity);
  json.Set("countmin_width", config.countmin_width);
  json.Set("countmin_depth", config.countmin_depth);
  json.Set("entropy_k", config.entropy_k);
  json.Set("seed", U64(config.seed));
  return json;
}

StatusOr<SketchConfig> SketchConfigFromJson(const JsonValue& json) {
  // Every dimension is bounded at parse time: config documents come from the
  // same untrusted files as the sketches themselves, and each of these fields
  // sizes an allocation somewhere in preprocessing.
  SketchConfig config;
  FORESIGHT_ASSIGN_OR_RETURN(
      config.hyperplane_bits,
      ParseBoundedSize(json.Get("hyperplane_bits"), "hyperplane_bits"));
  FORESIGHT_ASSIGN_OR_RETURN(config.hyperplane_log2_factor,
                             ParseNumber(json.Get("hyperplane_log2_factor"),
                                         "hyperplane_log2_factor"));
  FORESIGHT_ASSIGN_OR_RETURN(
      config.projection_dims,
      ParseBoundedSize(json.Get("projection_dims"), "projection_dims"));
  FORESIGHT_ASSIGN_OR_RETURN(config.kll_k,
                             ParseBoundedSize(json.Get("kll_k"), "kll_k"));
  FORESIGHT_ASSIGN_OR_RETURN(
      config.reservoir_capacity,
      ParseBoundedSize(json.Get("reservoir_capacity"), "reservoir_capacity"));
  FORESIGHT_ASSIGN_OR_RETURN(
      config.spacesaving_capacity,
      ParseBoundedSize(json.Get("spacesaving_capacity"),
                       "spacesaving_capacity"));
  FORESIGHT_ASSIGN_OR_RETURN(
      config.countmin_width,
      ParseBoundedSize(json.Get("countmin_width"), "countmin_width"));
  FORESIGHT_ASSIGN_OR_RETURN(
      config.countmin_depth,
      ParseBoundedSize(json.Get("countmin_depth"), "countmin_depth"));
  if (config.countmin_width * config.countmin_depth > kMaxSketchDimension) {
    return Status::ParseError("countmin geometry exceeds sanity bound");
  }
  FORESIGHT_ASSIGN_OR_RETURN(
      config.entropy_k, ParseBoundedSize(json.Get("entropy_k"), "entropy_k"));
  FORESIGHT_ASSIGN_OR_RETURN(config.seed, ParseU64(json.Get("seed"), "seed"));
  return config;
}

}  // namespace foresight
