#include "sketch/panel_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace foresight {

RandomPanelCache::RandomPanelCache(const HyperplaneSketcher& hyperplane,
                                   const ProjectionSketcher& projection,
                                   size_t n_rows, size_t block_rows)
    : hyperplane_(&hyperplane),
      projection_(&projection),
      n_rows_(n_rows),
      block_rows_(std::max<size_t>(1, block_rows)),
      num_blocks_((n_rows + block_rows_ - 1) / block_rows_),
      slots_(num_blocks_ > 0 ? std::make_unique<Slot[]>(num_blocks_)
                             : nullptr) {}

void RandomPanelCache::PlanUses(std::vector<int64_t> uses_per_block) {
  FORESIGHT_CHECK(uses_per_block.size() == num_blocks_);
  for (size_t b = 0; b < num_blocks_; ++b) {
    slots_[b].remaining_uses.store(uses_per_block[b],
                                   std::memory_order_relaxed);
  }
}

std::shared_ptr<const RandomPanelBlock> RandomPanelCache::Acquire(
    size_t block) {
  FORESIGHT_CHECK(block < num_blocks_);
  acquires_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[block];
  MutexLock lock(slot.mutex);
  if (slot.block == nullptr) {
    if (slot.generated_before) {
      regenerations_.fetch_add(1, std::memory_order_relaxed);
    }
    slot.generated_before = true;
    auto panel = std::make_shared<RandomPanelBlock>();
    panel->row_begin = block_begin(block);
    panel->num_rows = block_end(block) - panel->row_begin;
    panel->hyperplane_k = hyperplane_->k();
    panel->projection_k = projection_->k();
    panel->hyperplane.resize(panel->num_rows * panel->hyperplane_k);
    panel->projection.resize(panel->num_rows * panel->projection_k);
    for (size_t j = 0; j < panel->num_rows; ++j) {
      size_t row = panel->row_begin + j;
      hyperplane_->GenerateRowHyperplanes(
          row, panel->hyperplane.data() + j * panel->hyperplane_k);
      projection_->GenerateRowComponents(
          row, panel->projection.data() + j * panel->projection_k);
    }
    slot.block = std::move(panel);
    blocks_generated_.fetch_add(1, std::memory_order_relaxed);
  }
  return slot.block;
}

void RandomPanelCache::Release(size_t block) {
  FORESIGHT_CHECK(block < num_blocks_);
  Slot& slot = slots_[block];
  int64_t planned = slot.remaining_uses.load(std::memory_order_relaxed);
  if (planned < 0) return;  // No plan: keep resident for the cache lifetime.
  int64_t remaining =
      slot.remaining_uses.fetch_sub(1, std::memory_order_acq_rel) - 1;
  FORESIGHT_CHECK(remaining >= 0);
  if (remaining == 0) {
    MutexLock lock(slot.mutex);
    slot.block.reset();
  }
}

}  // namespace foresight
