#ifndef FORESIGHT_SKETCH_INGEST_KERNELS_H_
#define FORESIGHT_SKETCH_INGEST_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace foresight {
namespace ingest_kernels {

// Blocked accumulation kernels shared by HyperplaneSketcher and
// ProjectionSketcher. `panel` is a row-major (count x k) slab of random
// components; `acc` is the k-wide accumulator vector.
//
// Bit-identity contract: each acc[i] receives exactly one round-to-nearest
// multiply + one add per row, in ascending row order — the same operation
// sequence as the scalar row-at-a-time path. The implementations are cloned
// for AVX2 and dispatched by CPU feature at load time; the AVX2 clone
// vectorizes across the accumulator index i only, and AVX2 carries no FMA
// instruction set, so no fused multiply-add can alter the roundings.
// (AVX-512 is deliberately excluded: its feature set brings FMA, which would
// let the compiler contract mul+add pairs and break bit-identity with the
// scalar reference path.)

/// acc[i] += (values[j] * scale) * panel[j*k + i] for each row j < count.
/// The scaled value is rounded once per row before the inner loop, exactly
/// as the row-at-a-time path does. scale == 1.0 is exact (identity).
void DenseValuesAxpy(const double* panel, const double* values, size_t count,
                     size_t k, double scale, double* acc);

/// Multi-column variant of DenseValuesAxpy: accs[c][i] += (values[c][j] *
/// scale) * panel[j*k + i] for each of ncols column streams. Each column's
/// accumulator receives the identical addition sequence as a DenseValuesAxpy
/// call would produce, but every four-row panel slab is loaded once and
/// swept by all columns while hot in L1 — the caller batches columns in
/// small groups so the group's accumulators stay cache-resident too.
void DenseValuesAxpyGroup(const double* panel, const double* const* values,
                          size_t ncols, size_t count, size_t k, double scale,
                          double* const* accs);

/// Same as DenseValuesAxpy, but row j of the block lives at
/// panel[local_rows[j]*k] — used for columns with nulls, where valid rows
/// were compacted.
void GatherValuesAxpy(const double* panel, const uint32_t* local_rows,
                      const double* values, size_t count, size_t k,
                      double scale, double* acc);

/// acc[i] += scale * panel[j*k + i] for each row j < count.
void DenseOnesAxpy(const double* panel, size_t count, size_t k, double scale,
                   double* acc);

/// Gather variant of DenseOnesAxpy.
void GatherOnesAxpy(const double* panel, const uint32_t* local_rows,
                    size_t count, size_t k, double scale, double* acc);

}  // namespace ingest_kernels
}  // namespace foresight

#endif  // FORESIGHT_SKETCH_INGEST_KERNELS_H_
