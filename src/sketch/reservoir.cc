#include "sketch/reservoir.h"

#include <algorithm>

namespace foresight {

ReservoirSample::ReservoirSample(size_t capacity, uint64_t seed)
    : capacity_(std::max<size_t>(1, capacity)), rng_(seed) {
  values_.reserve(capacity_);
}

void ReservoirSample::Add(double value) {
  ++seen_;
  if (values_.size() < capacity_) {
    values_.push_back(value);
    return;
  }
  uint64_t slot = rng_.UniformInt(seen_);
  if (slot < capacity_) {
    values_[static_cast<size_t>(slot)] = value;
  }
}

ReservoirSample ReservoirSample::FromRaw(size_t capacity, uint64_t seed,
                                         uint64_t seen,
                                         std::vector<double> values) {
  ReservoirSample sample(capacity, seed);
  sample.seen_ = seen;
  sample.values_ = std::move(values);
  return sample;
}

void ReservoirSample::Merge(const ReservoirSample& other) {
  if (other.seen_ == 0) return;
  if (seen_ == 0) {
    values_ = other.values_;
    seen_ = other.seen_;
    return;
  }
  // Draw capacity_ elements, each taken from `this` with probability
  // seen / (seen + other.seen), from `other` otherwise — a uniform sample of
  // the concatenated stream given both inputs are uniform samples.
  uint64_t total = seen_ + other.seen_;
  std::vector<double> merged;
  size_t target = std::min<uint64_t>(capacity_, total);
  merged.reserve(target);
  std::vector<double> mine = values_;
  std::vector<double> theirs = other.values_;
  rng_.Shuffle(mine);
  rng_.Shuffle(theirs);
  size_t i = 0, j = 0;
  double p_mine = static_cast<double>(seen_) / static_cast<double>(total);
  while (merged.size() < target) {
    bool take_mine = rng_.UniformDouble() < p_mine;
    if (take_mine && i < mine.size()) {
      merged.push_back(mine[i++]);
    } else if (!take_mine && j < theirs.size()) {
      merged.push_back(theirs[j++]);
    } else if (i < mine.size()) {
      merged.push_back(mine[i++]);
    } else if (j < theirs.size()) {
      merged.push_back(theirs[j++]);
    } else {
      break;
    }
  }
  values_ = std::move(merged);
  seen_ = total;
}

}  // namespace foresight
