#include "sketch/reservoir.h"

#include <algorithm>

#include "util/logging.h"

namespace foresight {
namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
uint64_t MixBits(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Merge randomness derives from the logical state of the two operands only —
/// never from the member RNG, whose position depends on construction history
/// (a freshly built reservoir and one round-tripped through FromRaw carry
/// different RNG states but must merge identically).
uint64_t MergeSeed(uint64_t a, uint64_t b, uint64_t c) {
  return MixBits(a + 0x9E3779B97F4A7C15ULL * (b + 0x9E3779B97F4A7C15ULL * c));
}

}  // namespace

ReservoirSample::ReservoirSample(size_t capacity, uint64_t seed)
    : capacity_(std::max<size_t>(1, capacity)), rng_(seed) {
  values_.reserve(capacity_);
}

void ReservoirSample::Add(double value) {
  ++seen_;
  if (values_.size() < capacity_) {
    values_.push_back(value);
    return;
  }
  uint64_t slot = rng_.UniformInt(seen_);
  if (slot < capacity_) {
    values_[static_cast<size_t>(slot)] = value;
  }
}

ReservoirSample ReservoirSample::FromRaw(size_t capacity, uint64_t seed,
                                         uint64_t seen,
                                         std::vector<double> values) {
  FORESIGHT_CHECK(values.size() <= std::max<size_t>(1, capacity));
  FORESIGHT_CHECK(values.size() <= seen);
  ReservoirSample sample(capacity, seed);
  sample.seen_ = seen;
  sample.values_ = std::move(values);
  return sample;
}

void ReservoirSample::Merge(const ReservoirSample& other) {
  if (other.seen_ == 0) return;
  if (seen_ == 0) {
    // Adopt the other reservoir — clamped to our capacity with an unbiased
    // draw when it holds more elements than we may (partial Fisher-Yates:
    // every element lands in the kept prefix with equal probability).
    values_ = other.values_;
    if (values_.size() > capacity_) {
      Rng rng(MergeSeed(other.seen_, values_.size(), capacity_));
      for (size_t i = 0; i < capacity_; ++i) {
        size_t pick =
            i + static_cast<size_t>(rng.UniformInt(values_.size() - i));
        std::swap(values_[i], values_[pick]);
      }
      values_.resize(capacity_);
    }
    seen_ = other.seen_;
    return;
  }
  if (seen_ == values_.size() && other.seen_ == other.values_.size() &&
      values_.size() + other.values_.size() <= capacity_) {
    // Both reservoirs hold their entire streams and the union fits: plain
    // concatenation IS the one-pass reservoir of the concatenated stream,
    // bit for bit (Add never evicts below capacity).
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    seen_ += other.seen_;
    return;
  }
  // Draw capacity_ elements, each taken from `this` with probability
  // seen / (seen + other.seen), from `other` otherwise — a uniform sample of
  // the concatenated stream given both inputs are uniform samples.
  uint64_t total = seen_ + other.seen_;
  Rng rng(MergeSeed(seen_, other.seen_, capacity_));
  std::vector<double> merged;
  size_t target = std::min<uint64_t>(capacity_, total);
  merged.reserve(target);
  std::vector<double> mine = values_;
  std::vector<double> theirs = other.values_;
  rng.Shuffle(mine);
  rng.Shuffle(theirs);
  size_t i = 0, j = 0;
  double p_mine = static_cast<double>(seen_) / static_cast<double>(total);
  while (merged.size() < target) {
    bool take_mine = rng.UniformDouble() < p_mine;
    if (take_mine && i < mine.size()) {
      merged.push_back(mine[i++]);
    } else if (!take_mine && j < theirs.size()) {
      merged.push_back(theirs[j++]);
    } else if (i < mine.size()) {
      merged.push_back(mine[i++]);
    } else if (j < theirs.size()) {
      merged.push_back(theirs[j++]);
    } else {
      break;
    }
  }
  values_ = std::move(merged);
  seen_ = total;
}

}  // namespace foresight
