#ifndef FORESIGHT_SKETCH_KLL_H_
#define FORESIGHT_SKETCH_KLL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace foresight {

/// KLL streaming quantile sketch (Karnin, Lang, Liberty 2016) — the paper's
/// "quantile sketch" (§3). Answers rank/quantile/CDF queries over a numeric
/// stream with additive rank error eps ~ O(1/k_param), using O(k_param)
/// memory independent of stream length. Fully mergeable.
class KllSketch {
 public:
  /// `k_param` controls accuracy/space (typical 100-400; rank error ~1-2%
  /// at 200). `seed` drives the randomized compaction coin flips.
  explicit KllSketch(size_t k_param = 200, uint64_t seed = 7);

  /// Inserts one value. Amortized O(log(n/k)).
  void Update(double value);

  /// Merges another sketch (any k_param) into this one.
  void Merge(const KllSketch& other);

  /// Total values inserted.
  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Estimated value at normalized rank q in [0, 1]. Returns 0 on empty.
  double Quantile(double q) const;

  /// Estimated normalized rank of `value`: fraction of stream <= value.
  double Rank(double value) const;

  /// Exact minimum / maximum of the stream (tracked separately).
  double min() const { return min_; }
  double max() const { return max_; }

  /// Number of (value, weight) pairs currently retained.
  size_t RetainedItems() const;

  /// A-priori additive rank-error bound (two-sided, ~99% confidence),
  /// per the KLL analysis: eps ~ 2.296 / k ^ 0.9.
  double NormalizedRankError() const;

  /// Raw state, exposed for serialization.
  size_t k_param() const { return k_param_; }
  uint64_t rng_state() const { return rng_state_; }
  const std::vector<std::vector<double>>& levels() const { return levels_; }

  /// Reconstructs a sketch from its raw state (deserialization).
  static KllSketch FromRaw(size_t k_param, uint64_t rng_state, uint64_t count,
                           double min, double max,
                           std::vector<std::vector<double>> levels);

 private:
  void Compress();
  void CompactLevel(size_t level);
  /// Recomputes the cached per-level capacities for the current level count.
  /// Update() is the ingestion hot path, so capacities (which involve a pow()
  /// per level) are cached and refreshed only when the level structure
  /// changes; compaction decisions are identical to recomputing them fresh.
  void RefreshCapacities();
  /// All retained (value, weight) pairs sorted by value.
  std::vector<std::pair<double, uint64_t>> SortedWeightedItems() const;

  size_t k_param_;
  uint64_t rng_state_;
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// levels_[h] holds items with weight 2^h. Level 0 is the unsorted buffer;
  /// higher levels are kept sorted.
  std::vector<std::vector<double>> levels_;
  /// Total retained items across levels, maintained incrementally (equals
  /// RetainedItems(); cached so Update() stays O(1) off the compaction path).
  size_t retained_ = 0;
  /// Cached capacity schedule for the current levels_.size() (see
  /// RefreshCapacities).
  std::vector<size_t> capacity_;
  size_t total_capacity_ = 0;
};

}  // namespace foresight

#endif  // FORESIGHT_SKETCH_KLL_H_
