#ifndef FORESIGHT_UTIL_LOGGING_H_
#define FORESIGHT_UTIL_LOGGING_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Internal-invariant checks. These abort the process on violation: they guard
/// programming errors, not user input (user input errors surface as `Status`).
#define FORESIGHT_CHECK(cond)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FORESIGHT_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                             \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define FORESIGHT_CHECK_MSG(cond, msg)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FORESIGHT_CHECK failed at %s:%d: %s (%s)\n",   \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define FORESIGHT_DCHECK(cond) assert(cond)

#endif  // FORESIGHT_UTIL_LOGGING_H_
