#ifndef FORESIGHT_UTIL_JSON_H_
#define FORESIGHT_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace foresight {

/// A self-contained JSON document model used for Vega-Lite chart specs and
/// exploration-session serialization. Supports the full JSON data model;
/// object keys preserve insertion order (Vega-Lite specs read better that way).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructors for each JSON type.
  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  JsonValue(int value) : type_(Type::kNumber), number_(value) {}
  JsonValue(int64_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(size_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  /// An all-number array stored packed: one vector<double> instead of one
  /// JsonValue node per element (~12x smaller, allocation-free to walk).
  /// Indistinguishable through the public API — size()/at()/Append()/Dump()
  /// behave exactly like the element-wise representation — but at() and a
  /// non-number Append() first rebuild element nodes, a one-time
  /// representation change that is NOT safe against concurrent access to the
  /// same value. Bulk readers use packed_numbers() to skip that entirely.
  /// An empty input produces a plain (unpacked) empty array.
  static JsonValue PackedNumberArray(std::vector<double> values);
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  /// Array access. `Append` is valid only on arrays.
  void Append(JsonValue value);
  size_t size() const;
  const JsonValue& at(size_t index) const;
  /// Non-null iff this is a packed number array (see PackedNumberArray);
  /// points at all elements in order. Null after at()/Append() forced the
  /// element-wise representation.
  const std::vector<double>* packed_numbers() const {
    return packed_ ? &packed_numbers_ : nullptr;
  }

  /// Object access. `Set` overwrites; `Get` returns nullptr when absent.
  void Set(std::string key, JsonValue value);
  const JsonValue* Get(std::string_view key) const;
  bool Has(std::string_view key) const { return Get(key) != nullptr; }
  /// Removes `key` from an object; returns whether it was present. Lets
  /// callers strip an envelope field before handing the document to a strict
  /// unknown-field-rejecting decoder.
  bool Remove(std::string_view key);
  const std::vector<std::pair<std::string, JsonValue>>& items() const {
    return object_;
  }

  /// Serializes to a JSON string. `indent < 0` produces compact output;
  /// `indent >= 0` pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

  /// Parses a JSON document. Returns ParseError with position info on failure.
  static StatusOr<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;
  /// Rebuilds array_ from packed_numbers_ (logical value unchanged, so const
  /// with mutable storage; see the PackedNumberArray thread-safety caveat).
  void UnpackNumbers() const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  mutable bool packed_ = false;
  mutable std::vector<double> packed_numbers_;
  mutable std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes a string for embedding in JSON output (without the quotes).
std::string JsonEscape(std::string_view input);

}  // namespace foresight

#endif  // FORESIGHT_UTIL_JSON_H_
