#ifndef FORESIGHT_UTIL_JSON_H_
#define FORESIGHT_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace foresight {

/// A self-contained JSON document model used for Vega-Lite chart specs and
/// exploration-session serialization. Supports the full JSON data model;
/// object keys preserve insertion order (Vega-Lite specs read better that way).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructors for each JSON type.
  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  JsonValue(int value) : type_(Type::kNumber), number_(value) {}
  JsonValue(int64_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(size_t value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  /// Array access. `Append` is valid only on arrays.
  void Append(JsonValue value);
  size_t size() const;
  const JsonValue& at(size_t index) const;

  /// Object access. `Set` overwrites; `Get` returns nullptr when absent.
  void Set(std::string key, JsonValue value);
  const JsonValue* Get(std::string_view key) const;
  bool Has(std::string_view key) const { return Get(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& items() const {
    return object_;
  }

  /// Serializes to a JSON string. `indent < 0` produces compact output;
  /// `indent >= 0` pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

  /// Parses a JSON document. Returns ParseError with position info on failure.
  static StatusOr<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes a string for embedding in JSON output (without the quotes).
std::string JsonEscape(std::string_view input);

}  // namespace foresight

#endif  // FORESIGHT_UTIL_JSON_H_
