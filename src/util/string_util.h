#ifndef FORESIGHT_UTIL_STRING_UTIL_H_
#define FORESIGHT_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace foresight {

/// Splits `input` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Strict double parse: the whole (trimmed) string must be a finite or
/// infinite numeric literal. Returns nullopt for empty or non-numeric input.
std::optional<double> ParseDouble(std::string_view input);

/// Strict int64 parse of the whole (trimmed) string.
std::optional<int64_t> ParseInt64(std::string_view input);

/// True if `value` case-insensitively equals one of the conventional CSV
/// missing-value markers: "", "na", "n/a", "nan", "null", "none", "?".
bool IsMissingToken(std::string_view value);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view input);

/// Formats a double compactly with up to `precision` significant digits
/// ("0.5", "1.25e-06"); never produces locale-dependent separators.
std::string FormatDouble(double value, int precision = 6);

/// 64-bit FNV-1a hash. Deterministic across platforms and standard-library
/// implementations (unlike std::hash), so values derived from it — e.g. the
/// query cache's shard assignment — are stable in tests and telemetry.
uint64_t Fnv1a64(std::string_view data);

/// CRC-64 (ECMA-182 polynomial, reflected, init/xorout 0xFF..FF — the
/// "CRC-64/XZ" parameterization). Used as the integrity checksum of binary
/// profile snapshots (core/snapshot.h): unlike FNV it has guaranteed
/// burst-error detection, and it is deterministic across platforms.
uint64_t Crc64(std::string_view data);

}  // namespace foresight

#endif  // FORESIGHT_UTIL_STRING_UTIL_H_
