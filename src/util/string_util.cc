#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace foresight {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> result;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      result.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return result;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::optional<double> ParseDouble(std::string_view input) {
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  const char* first = trimmed.data();
  const char* last = trimmed.data() + trimmed.size();
  // from_chars rejects a leading '+'; accept it manually.
  if (*first == '+' && trimmed.size() > 1) ++first;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt64(std::string_view input) {
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) return std::nullopt;
  int64_t value = 0;
  const char* first = trimmed.data();
  const char* last = trimmed.data() + trimmed.size();
  if (*first == '+' && trimmed.size() > 1) ++first;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

bool IsMissingToken(std::string_view value) {
  std::string lower = ToLower(Trim(value));
  return lower.empty() || lower == "na" || lower == "n/a" || lower == "nan" ||
         lower == "null" || lower == "none" || lower == "?";
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace foresight
