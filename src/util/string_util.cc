#include "util/string_util.h"

#include <array>
#include <cctype>
#include <cstring>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace foresight {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> result;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      result.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return result;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::optional<double> ParseDouble(std::string_view input) {
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  const char* first = trimmed.data();
  const char* last = trimmed.data() + trimmed.size();
  // from_chars rejects a leading '+'; accept it manually.
  if (*first == '+' && trimmed.size() > 1) ++first;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt64(std::string_view input) {
  std::string_view trimmed = Trim(input);
  if (trimmed.empty()) return std::nullopt;
  int64_t value = 0;
  const char* first = trimmed.data();
  const char* last = trimmed.data() + trimmed.size();
  if (*first == '+' && trimmed.size() > 1) ++first;
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

bool IsMissingToken(std::string_view value) {
  std::string lower = ToLower(Trim(value));
  return lower.empty() || lower == "na" || lower == "n/a" || lower == "nan" ||
         lower == "null" || lower == "none" || lower == "?";
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

// Reflected CRC-64 tables for the ECMA-182 polynomial 0x42F0E1EBA9EA3693
// (reflected form 0xC96C5795D7870F42), built once on first use. Eight
// slice-by-8 tables: table[0] is the classic bytewise table, and
// table[k][b] = the CRC of byte b followed by k zero bytes, so eight input
// bytes fold into the accumulator per step (~6x faster than bytewise on the
// multi-MB snapshot payloads this guards; identical output).
using Crc64Tables = std::array<std::array<uint64_t, 256>, 8>;

const Crc64Tables& Crc64Table() {
  static const Crc64Tables kTables = [] {
    Crc64Tables tables{};
    for (uint64_t i = 0; i < 256; ++i) {
      uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xC96C5795D7870F42ull : 0);
      }
      tables[0][i] = crc;
    }
    for (size_t slice = 1; slice < 8; ++slice) {
      for (size_t i = 0; i < 256; ++i) {
        const uint64_t prev = tables[slice - 1][i];
        tables[slice][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
      }
    }
    return tables;
  }();
  return kTables;
}

}  // namespace

uint64_t Crc64(std::string_view data) {
  const Crc64Tables& t = Crc64Table();
  uint64_t crc = ~0ull;
  size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    uint64_t chunk = 0;
    std::memcpy(&chunk, data.data() + i, 8);
    // Bytes are consumed in increasing address order regardless of host
    // endianness: chunk's low byte on a little-endian host is data[i].
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    chunk = __builtin_bswap64(chunk);
#endif
    crc ^= chunk;
    crc = t[7][crc & 0xFFu] ^ t[6][(crc >> 8) & 0xFFu] ^
          t[5][(crc >> 16) & 0xFFu] ^ t[4][(crc >> 24) & 0xFFu] ^
          t[3][(crc >> 32) & 0xFFu] ^ t[2][(crc >> 40) & 0xFFu] ^
          t[1][(crc >> 48) & 0xFFu] ^ t[0][(crc >> 56) & 0xFFu];
  }
  for (; i < data.size(); ++i) {
    crc = t[0][(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace foresight
