#ifndef FORESIGHT_UTIL_TIMER_H_
#define FORESIGHT_UTIL_TIMER_H_

#include <chrono>

namespace foresight {

/// Tag selecting the WallTimer constructor that does not read the clock.
struct DeferredStart {};
inline constexpr DeferredStart kDeferredStart{};

/// Monotonic wall-clock timer for benchmark reporting.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Constructs without touching the clock; call Restart() before reading
  /// elapsed time. Lets conditional timing paths (metrics disabled) stay
  /// entirely clock-free.
  explicit WallTimer(DeferredStart) : start_{} {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace foresight

#endif  // FORESIGHT_UTIL_TIMER_H_
