#include "util/sync.h"

#include "util/logging.h"

namespace foresight {

// The Assert* bodies live out of line so the debug checks can use
// FORESIGHT_DCHECK without pulling util/logging.h (and <cassert>) into every
// header that includes sync.h.

void Mutex::AssertHeld() const {
#ifndef NDEBUG
  FORESIGHT_DCHECK(owner_.load(std::memory_order_relaxed) ==
                   std::this_thread::get_id());
#endif
}

void SharedMutex::AssertHeld() const {
#ifndef NDEBUG
  FORESIGHT_DCHECK(writer_.load(std::memory_order_relaxed) ==
                   std::this_thread::get_id());
#endif
}

void SharedMutex::AssertReaderHeld() const {
#ifndef NDEBUG
  FORESIGHT_DCHECK(readers_.load(std::memory_order_relaxed) > 0 ||
                   writer_.load(std::memory_order_relaxed) ==
                       std::this_thread::get_id());
#endif
}

// Analysis-wise Wait is a no-op on the lock set (REQUIRES(mu) on entry and
// the same on exit); at runtime it hands the raw mutex to a std::unique_lock
// just long enough for the wait protocol, without ever letting the
// unique_lock's destructor release what the caller's scope still owns.
void CondVar::Wait(Mutex& mu) {
  mu.AssertHeld();
  mu.DebugMarkReleased();  // wait() unlocks; ownership moves to a waker.
  std::unique_lock<std::mutex> lock(mu.raw_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();  // Still locked: the caller's guard owns it again.
  mu.DebugMarkAcquired();
}

}  // namespace foresight
