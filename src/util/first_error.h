#ifndef FORESIGHT_UTIL_FIRST_ERROR_H_
#define FORESIGHT_UTIL_FIRST_ERROR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/status.h"
#include "util/sync.h"

namespace foresight {

/// Collects the error of the LOWEST work-item index across concurrent
/// workers, so a parallel run reports exactly the error a serial
/// left-to-right scan would have hit first — regardless of thread timing.
/// Shared by the engine's candidate/overview evaluation and the explorer's
/// carousel fan-out (any position-indexed parallel loop with serial-identical
/// error semantics).
///
/// Leaf lock: Record/status hold mutex_ only across the index compare and
/// Status copy; nothing else is acquired under it.
class FirstError {
 public:
  bool has_error() const {
    return min_index_.load(std::memory_order_acquire) != SIZE_MAX;
  }

  /// True when an error at an index <= `index` is already recorded, meaning
  /// work item `index` cannot change the outcome and may be skipped.
  bool ShadowedAt(size_t index) const {
    return min_index_.load(std::memory_order_relaxed) <= index;
  }

  void Record(size_t index, Status status) {
    MutexLock lock(mutex_);
    if (index < min_index_.load(std::memory_order_relaxed)) {
      min_index_.store(index, std::memory_order_release);
      status_ = std::move(status);
    }
  }

  /// The recorded error (or OK when none). Takes the lock — a concurrent
  /// Record must never be observed half-applied — so call it after the
  /// parallel region, not per work item.
  Status status() const {
    MutexLock lock(mutex_);
    return status_;
  }

 private:
  std::atomic<size_t> min_index_{SIZE_MAX};
  mutable Mutex mutex_;
  Status status_ FORESIGHT_GUARDED_BY(mutex_);
};

}  // namespace foresight

#endif  // FORESIGHT_UTIL_FIRST_ERROR_H_
