#ifndef FORESIGHT_UTIL_FD_H_
#define FORESIGHT_UTIL_FD_H_

#include <cstdint>
#include <utility>

#include "util/status.h"

namespace foresight {

/// Owning wrapper for a POSIX file descriptor: closes on destruction, moves
/// transfer ownership, copying is disabled. The serve front-end's sockets,
/// epoll instances, and eventfds all live in these so no error path leaks a
/// descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing; returns the descriptor.
  int Release() { return std::exchange(fd_, -1); }

  /// Closes the descriptor (if any) and adopts `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Sets O_NONBLOCK on `fd` (required for every socket in an edge-triggered
/// epoll loop: a readiness event must be drained to EAGAIN).
Status SetNonBlocking(int fd);

/// Creates a nonblocking TCP listen socket bound to 127.0.0.1:`port`
/// (port 0 = kernel-assigned ephemeral port; *bound_port receives the actual
/// port either way). SO_REUSEADDR is set so restarts don't trip over
/// TIME_WAIT. Loopback-only by design: foresight_serve has no auth layer, so
/// it must not listen on external interfaces.
StatusOr<UniqueFd> CreateListenSocket(uint16_t port, int backlog,
                                      uint16_t* bound_port);

}  // namespace foresight

#endif  // FORESIGHT_UTIL_FD_H_
