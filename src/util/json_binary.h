#ifndef FORESIGHT_UTIL_JSON_BINARY_H_
#define FORESIGHT_UTIL_JSON_BINARY_H_

#include <string>
#include <string_view>

#include "util/json.h"
#include "util/status.h"

namespace foresight {

/// Binary encoding of a JsonValue document ("FJB1").
///
/// Profile snapshots reuse the hostile-input-hardened per-sketch
/// `*FromJson` validators in sketch/serialize.cc, but parsing a multi-MB
/// JSON *text* rendering of a profile costs tens of milliseconds in number
/// formatting alone. This codec round-trips the JsonValue tree itself:
/// doubles travel as 8 raw little-endian bytes (bit-exact, no decimal
/// round-trip), lengths as LEB128 varints, and homogeneous number arrays —
/// the dominant content of a profile (sample vectors, sketch registers) —
/// as a single packed f64 run instead of one tagged value per element.
///
/// Wire grammar (one value):
///   0x00            null
///   0x01            false
///   0x02            true
///   0x03 f64le      number
///   0x04 len bytes  string (len = LEB128 varint, bytes = UTF-8)
///   0x05 n v...     array of n tagged values
///   0x06 n (k v)... object of n (string-key, value) pairs, insertion order
///   0x07 n f64le... array of n numbers, packed (encoder uses this whenever
///                   every element of an array is a number)
///
/// Hardening mirrors sketch/serialize.cc: every declared count is checked
/// against the bytes actually remaining before any allocation, nesting depth
/// is capped, and decode fails unless the document consumes the input
/// exactly. The encoding is deterministic: encoding the same JsonValue
/// always yields the same bytes.
std::string JsonBinaryEncode(const JsonValue& value);

/// Decodes a document produced by JsonBinaryEncode. The entire input must be
/// consumed; trailing bytes, truncation, unknown tags, oversized counts, or
/// nesting beyond the depth limit all return InvalidArgument.
StatusOr<JsonValue> JsonBinaryDecode(std::string_view bytes);

/// Maximum nesting depth accepted by JsonBinaryDecode (matches the text
/// parser's guard so neither representation can stack-overflow the other).
inline constexpr int kJsonBinaryMaxDepth = 128;

}  // namespace foresight

#endif  // FORESIGHT_UTIL_JSON_BINARY_H_
