#ifndef FORESIGHT_UTIL_SYNC_H_
#define FORESIGHT_UTIL_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

/// Annotated synchronization primitives for Clang Thread Safety Analysis.
///
/// Every lock in the engine and serving stack lives behind the wrappers in
/// this header (tools/lint_determinism.py bans raw std::mutex and friends in
/// src/ outside util/sync.{h,cc}), so the locking rules are machine-checked
/// at compile time under clang: which fields a mutex guards (GUARDED_BY),
/// which functions must hold it (REQUIRES) or must not (EXCLUDES), and that
/// every acquire has a matching release. Under GCC the attributes expand to
/// nothing and the wrappers are zero-cost forwarding shims; correctness does
/// not depend on the analysis, only the *checking* does. Build with
/// -DFORESIGHT_THREAD_SAFETY=ON (default for clang) to turn on
/// -Wthread-safety -Wthread-safety-beta; CI runs that configuration under
/// -Werror, and tools/check_thread_safety.py proves the warnings still fire
/// on known-bad code so the gate cannot silently rot.
///
/// ## Lock hierarchy
///
/// When more than one of these locks is held at once, they must be acquired
/// in the order below (release order is unconstrained). Most locks are
/// leaves — held only across short critical sections that acquire nothing —
/// so the full chain never occurs; the order matters because metric export
/// runs component callbacks under the registry lock:
///
///   1. MetricsRegistry::mutex_      (util/metrics.h)    ToJson /
///      ToPrometheusText invoke callback metrics while holding it; a
///      callback may read component counters guarded by locks below.
///   2. QueryCache::Shard::mutex     (core/query_cache.h) taken by the
///      QuerySession cache-stats callbacks under the registry lock.
///   3. ThreadPool::queue_mutex_     (util/thread_pool.h) task admission;
///      metric updates made under it are lock-free atomics, never the
///      registry lock, so 1 -> 3 never inverts.
///   4. Serve-side locks             (serve/server.h, serve/request_queue.h)
///      HttpServer::completions_mutex_ and RequestQueue::mutex_; the serve
///      connection table itself is loop-thread-only and unlocked.
///
///   Leaves (never held while acquiring any other lock in this table):
///   RandomPanelCache::Slot::mutex, ThreadPool::ForJob::mutex,
///   FirstError::mutex_, DatasetRegistry::mutex_ (core/dataset_registry.h:
///   dataset loads and evicted-dataset destruction — which takes a
///   per-dataset MetricsRegistry lock — both run with it released, and its
///   registry.* metric handles are pre-resolved lock-free atomics).
///
/// New code must slot into this order; a function that acquires a lock while
/// its caller may hold a lower-numbered one is a hierarchy violation even if
/// no test deadlocks today. Annotate cross-lock requirements with
/// FORESIGHT_ACQUIRED_BEFORE / FORESIGHT_ACQUIRED_AFTER where both mutexes
/// are statically nameable — -Wthread-safety-beta checks those orders at
/// compile time — and with FORESIGHT_EXCLUDES on functions that acquire a
/// lock their callers might hold.
///
/// ## Annotating new state
///
///   Mutex mu_;
///   std::deque<Work> items_ FORESIGHT_GUARDED_BY(mu_);
///   Widget* widget_ FORESIGHT_PT_GUARDED_BY(mu_);   // *widget_ guarded.
///   void DrainLocked() FORESIGHT_REQUIRES(mu_);     // caller holds mu_.
///   void Drain() FORESIGHT_EXCLUDES(mu_);           // caller must NOT.
///
/// Suppressions (FORESIGHT_NO_THREAD_SAFETY_ANALYSIS, or a "sync-ok: with a
/// reason" comment for the raw-primitive lint) are a last resort for code
/// the analysis cannot model (e.g. lock handoff across threads); every one
/// needs a written reason, and "the warning was annoying" is not one.

#if defined(__clang__)
#define FORESIGHT_TS_ATTR(x) __attribute__((x))
#else
#define FORESIGHT_TS_ATTR(x)  // GCC et al.: annotations compile to nothing.
#endif

#define FORESIGHT_CAPABILITY(x) FORESIGHT_TS_ATTR(capability(x))
#define FORESIGHT_SCOPED_CAPABILITY FORESIGHT_TS_ATTR(scoped_lockable)
#define FORESIGHT_GUARDED_BY(x) FORESIGHT_TS_ATTR(guarded_by(x))
#define FORESIGHT_PT_GUARDED_BY(x) FORESIGHT_TS_ATTR(pt_guarded_by(x))
#define FORESIGHT_ACQUIRED_BEFORE(...) \
  FORESIGHT_TS_ATTR(acquired_before(__VA_ARGS__))
#define FORESIGHT_ACQUIRED_AFTER(...) \
  FORESIGHT_TS_ATTR(acquired_after(__VA_ARGS__))
#define FORESIGHT_REQUIRES(...) \
  FORESIGHT_TS_ATTR(requires_capability(__VA_ARGS__))
#define FORESIGHT_REQUIRES_SHARED(...) \
  FORESIGHT_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#define FORESIGHT_ACQUIRE(...) \
  FORESIGHT_TS_ATTR(acquire_capability(__VA_ARGS__))
#define FORESIGHT_ACQUIRE_SHARED(...) \
  FORESIGHT_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#define FORESIGHT_RELEASE(...) \
  FORESIGHT_TS_ATTR(release_capability(__VA_ARGS__))
#define FORESIGHT_RELEASE_SHARED(...) \
  FORESIGHT_TS_ATTR(release_shared_capability(__VA_ARGS__))
#define FORESIGHT_RELEASE_GENERIC(...) \
  FORESIGHT_TS_ATTR(release_generic_capability(__VA_ARGS__))
#define FORESIGHT_TRY_ACQUIRE(...) \
  FORESIGHT_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define FORESIGHT_EXCLUDES(...) FORESIGHT_TS_ATTR(locks_excluded(__VA_ARGS__))
#define FORESIGHT_ASSERT_CAPABILITY(x) FORESIGHT_TS_ATTR(assert_capability(x))
#define FORESIGHT_ASSERT_SHARED_CAPABILITY(x) \
  FORESIGHT_TS_ATTR(assert_shared_capability(x))
#define FORESIGHT_RETURN_CAPABILITY(x) FORESIGHT_TS_ATTR(lock_returned(x))
#define FORESIGHT_NO_THREAD_SAFETY_ANALYSIS \
  FORESIGHT_TS_ATTR(no_thread_safety_analysis)

namespace foresight {

class CondVar;

/// Annotated exclusive mutex. Debug builds additionally track the owning
/// thread so AssertHeld() is a real runtime check, not only a static fact
/// fed to the analysis.
class FORESIGHT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FORESIGHT_ACQUIRE() {
    raw_.lock();
    DebugMarkAcquired();
  }
  void Unlock() FORESIGHT_RELEASE() {
    DebugMarkReleased();
    raw_.unlock();
  }
  /// True (and the lock is held) or false (state unchanged).
  bool TryLock() FORESIGHT_TRY_ACQUIRE(true) {
    if (!raw_.try_lock()) return false;
    DebugMarkAcquired();
    return true;
  }
  /// Tells the analysis the calling thread holds this mutex (for code
  /// reached only with the lock held but outside a visible critical
  /// section). In debug builds it also aborts if that claim is false.
  void AssertHeld() const FORESIGHT_ASSERT_CAPABILITY(this);

 private:
  friend class CondVar;
#ifndef NDEBUG
  void DebugMarkAcquired() {
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void DebugMarkReleased() {
    owner_.store(std::thread::id(), std::memory_order_relaxed);
  }
#else
  void DebugMarkAcquired() {}
  void DebugMarkReleased() {}
#endif

  std::mutex raw_;
#ifndef NDEBUG
  std::atomic<std::thread::id> owner_{};
#endif
};

/// Annotated reader/writer mutex. Exclusive ownership is debug-tracked like
/// Mutex; shared holders are counted so AssertReaderHeld() can at least
/// verify some reader (or the writer) exists.
class FORESIGHT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() FORESIGHT_ACQUIRE() {
    raw_.lock();
#ifndef NDEBUG
    writer_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void Unlock() FORESIGHT_RELEASE() {
#ifndef NDEBUG
    writer_.store(std::thread::id(), std::memory_order_relaxed);
#endif
    raw_.unlock();
  }
  void LockShared() FORESIGHT_ACQUIRE_SHARED() {
    raw_.lock_shared();
#ifndef NDEBUG
    readers_.fetch_add(1, std::memory_order_relaxed);
#endif
  }
  void UnlockShared() FORESIGHT_RELEASE_SHARED() {
#ifndef NDEBUG
    readers_.fetch_sub(1, std::memory_order_relaxed);
#endif
    raw_.unlock_shared();
  }
  /// Claims exclusive ownership to the analysis; debug-checked at runtime.
  void AssertHeld() const FORESIGHT_ASSERT_CAPABILITY(this);
  /// Claims shared (or exclusive) ownership to the analysis; debug builds
  /// verify at least one holder exists. Per-thread reader identity is not
  /// tracked, so this is a weaker runtime check than AssertHeld().
  void AssertReaderHeld() const FORESIGHT_ASSERT_SHARED_CAPABILITY(this);

 private:
  std::shared_mutex raw_;
#ifndef NDEBUG
  std::atomic<std::thread::id> writer_{};
  std::atomic<int> readers_{0};
#endif
};

/// Scoped exclusive lock of a Mutex (the std::lock_guard replacement).
class FORESIGHT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FORESIGHT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FORESIGHT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock of a SharedMutex.
class FORESIGHT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) FORESIGHT_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() FORESIGHT_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock of a SharedMutex.
class FORESIGHT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) FORESIGHT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() FORESIGHT_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock of a nullable SharedMutex pointer: a no-op
/// when `mu` is null. For paths where a lock exists only in some
/// configurations (e.g. the HTTP server's per-dataset append/query exclusion,
/// present only when a dataset is appendable). Mirrors absl::MutexLockMaybe.
class FORESIGHT_SCOPED_CAPABILITY ReaderLockMaybe {
 public:
  explicit ReaderLockMaybe(SharedMutex* mu) FORESIGHT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    if (mu_ != nullptr) mu_->LockShared();
  }
  ~ReaderLockMaybe() FORESIGHT_RELEASE_GENERIC() {
    if (mu_ != nullptr) mu_->UnlockShared();
  }

  ReaderLockMaybe(const ReaderLockMaybe&) = delete;
  ReaderLockMaybe& operator=(const ReaderLockMaybe&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable paired with Mutex. There is deliberately no
/// predicate-taking Wait overload: the analysis does not propagate lock
/// state into lambda bodies, so predicates reading guarded fields would
/// warn spuriously — write the `while (!predicate) cv.Wait(mu);` loop in
/// the calling function, where the analysis sees the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen; always re-check the predicate.
  void Wait(Mutex& mu) FORESIGHT_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A movable relaxed atomic scalar, for epoch counters and flags that are
/// read concurrently with serving but carry no release/acquire obligations
/// of their own (monotonic epochs, idempotent toggles). std::atomic is
/// neither copyable nor movable, which would delete the move operations of
/// any class holding one (InsightEngine is moved out of StatusOr); this
/// wrapper copies by value snapshot. All accesses are relaxed — do NOT use
/// it to publish data another thread will read through it.
template <typename T>
class RelaxedAtomic {
 public:
  RelaxedAtomic() = default;
  explicit RelaxedAtomic(T value) : value_(value) {}
  RelaxedAtomic(const RelaxedAtomic& other) : value_(other.load()) {}
  RelaxedAtomic& operator=(const RelaxedAtomic& other) {
    store(other.load());
    return *this;
  }

  T load() const { return value_.load(std::memory_order_relaxed); }
  void store(T value) { value_.store(value, std::memory_order_relaxed); }
  T fetch_add(T delta) {
    return value_.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  std::atomic<T> value_{};
};

}  // namespace foresight

#endif  // FORESIGHT_UTIL_SYNC_H_
