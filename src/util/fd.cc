#include "util/fd.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace foresight {

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::IOError(std::string("fcntl(F_GETFL): ") +
                           std::strerror(errno));
  }
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(F_SETFL): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<UniqueFd> CreateListenSocket(uint16_t port, int backlog,
                                      uint16_t* bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Status::IOError(std::string("setsockopt(SO_REUSEADDR): ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      return Status::IOError(std::string("getsockname: ") +
                             std::strerror(errno));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  FORESIGHT_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

}  // namespace foresight
