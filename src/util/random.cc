#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace foresight {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr double kPi = 3.14159265358979323846;

// Ziggurat tables for the standard normal (Marsaglia & Tsang 2000), 128
// layers. kZigguratR is the x-coordinate of the base strip boundary; vn is
// the common strip area. Built once under the magic-static lock; read-only
// (and therefore thread-safe) afterwards.
constexpr double kZigguratR = 3.442619855899;

struct ZigguratTables {
  uint32_t kn[128];
  double wn[128];
  double fn[128];

  ZigguratTables() {
    const double m = 2147483648.0;  // 2^31: magnitudes are 31-bit.
    const double vn = 9.91256303526217e-3;
    double dn = kZigguratR;
    double tn = dn;
    double q = vn / std::exp(-0.5 * dn * dn);
    kn[0] = static_cast<uint32_t>((dn / q) * m);
    kn[1] = 0;
    wn[0] = q / m;
    wn[127] = dn / m;
    fn[0] = 1.0;
    fn[127] = std::exp(-0.5 * dn * dn);
    for (int i = 126; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(vn / dn + std::exp(-0.5 * dn * dn)));
      kn[i + 1] = static_cast<uint32_t>((dn / tn) * m);
      tn = dn;
      fn[i] = std::exp(-0.5 * dn * dn);
      wn[i] = dn / m;
    }
  }
};

const ZigguratTables& Ziggurat() {
  static const ZigguratTables tables;
  return tables;
}
}  // namespace

Rng::Rng(uint64_t seed) {
  // PCG recommended seeding: mix the seed into both state and stream.
  state_ = 0;
  inc_ = (seed << 1u) | 1u;
  NextUint32();
  state_ += 0x853c49e6748fea9bULL + seed;
  NextUint32();
}

uint32_t Rng::NextUint32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint64_t Rng::NextUint64() {
  return (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
}

uint64_t Rng::UniformInt(uint64_t bound) {
  FORESIGHT_CHECK(bound > 0);
  // Rejection sampling over the top of the range to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  // Ziggurat: the sign + layer index + magnitude all come from one 32-bit
  // draw. ~98% of draws take the single-compare fast path; the remainder
  // resolve exactly via wedge rejection (layers) or tail inversion (base).
  const ZigguratTables& z = Ziggurat();
  const int32_t hz = static_cast<int32_t>(NextUint32());
  const size_t i = static_cast<size_t>(hz & 127);
  const uint32_t mag = hz < 0 ? 0u - static_cast<uint32_t>(hz)
                              : static_cast<uint32_t>(hz);
  if (mag < z.kn[i]) return hz * z.wn[i];
  return NormalSlow(hz, i);
}

void Rng::FillNormals(double* out, size_t n) {
  // Batched ziggurat. The fast path is inlined with the PCG step hand-rolled
  // into the loop so the serial state recurrence (the real latency chain)
  // overlaps the table lookups and the store of the previous deviate. Draw
  // order — and therefore output — is identical to calling Normal() n times;
  // the rare slow cases defer to a private re-roll that mirrors Normal().
  const ZigguratTables& z = Ziggurat();
  uint64_t state = state_;
  const uint64_t inc = inc_;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t old = state;
    state = old * kPcgMultiplier + inc;
    const uint32_t xorshifted =
        static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    const uint32_t rot = static_cast<uint32_t>(old >> 59u);
    const uint32_t bits =
        (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    const int32_t hz = static_cast<int32_t>(bits);
    const size_t i = static_cast<size_t>(hz & 127);
    const uint32_t mag = hz < 0 ? 0u - static_cast<uint32_t>(hz)
                                : static_cast<uint32_t>(hz);
    if (mag < z.kn[i]) {
      out[j] = hz * z.wn[i];
      continue;
    }
    // Slow case (~2%): publish the state and finish this deviate via the
    // shared wedge/tail logic, then resume batching.
    state_ = state;
    out[j] = NormalSlow(hz, i);
    state = state_;
  }
  state_ = state;
}

double Rng::NormalSlow(int32_t hz, size_t i) {
  const ZigguratTables& z = Ziggurat();
  for (;;) {
    if (i == 0) {
      // Base strip: exact sample from the tail beyond R.
      double x, y;
      do {
        double u1 = UniformDouble();
        double u2 = UniformDouble();
        while (u1 == 0.0) u1 = UniformDouble();
        while (u2 == 0.0) u2 = UniformDouble();
        x = -std::log(u1) / kZigguratR;
        y = -std::log(u2);
      } while (y + y < x * x);
      return hz > 0 ? kZigguratR + x : -(kZigguratR + x);
    }
    const double x = hz * z.wn[i];
    if (z.fn[i] + UniformDouble() * (z.fn[i - 1] - z.fn[i]) <
        std::exp(-0.5 * x * x)) {
      return x;
    }
    // Rejected: re-draw exactly as Normal() does.
    for (;;) {
      hz = static_cast<int32_t>(NextUint32());
      i = static_cast<size_t>(hz & 127);
      const uint32_t mag = hz < 0 ? 0u - static_cast<uint32_t>(hz)
                                  : static_cast<uint32_t>(hz);
      if (mag < z.kn[i]) return hz * z.wn[i];
      break;
    }
  }
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  FORESIGHT_CHECK(rate > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::Cauchy() {
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0 || u == 0.5);
  return std::tan(kPi * (u - 0.5));
}

double Rng::LogNormal(double mu_log, double sigma_log) {
  return std::exp(Normal(mu_log, sigma_log));
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  FORESIGHT_CHECK(n > 0);
  FORESIGHT_CHECK(s > 0.0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.assign(n, 0.0);
    double total = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = total;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= total;
  }
  double u = UniformDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

double Rng::StableSkewed(double alpha) {
  FORESIGHT_CHECK(alpha > 0.0 && alpha <= 2.0);
  // Chambers–Mallows–Stuck with beta = 1 (maximally right-skewed).
  double u = kPi * (UniformDouble() - 0.5);
  double w = Exponential(1.0);
  if (std::abs(alpha - 1.0) < 1e-12) {
    // alpha == 1, beta == 1 special case.
    double half_pi = kPi / 2.0;
    return (1.0 / half_pi) *
           ((half_pi + u) * std::tan(u) -
            std::log((half_pi * w * std::cos(u)) / (half_pi + u)));
  }
  double zeta = -std::tan(kPi * alpha / 2.0);  // beta = 1
  double xi = std::atan(-zeta) / alpha;
  double num = std::sin(alpha * (u + xi));
  double den = std::pow(std::cos(u), 1.0 / alpha);
  double tail = std::pow(std::cos(u - alpha * (u + xi)) / w, (1.0 - alpha) / alpha);
  return std::pow(1.0 + zeta * zeta, 1.0 / (2.0 * alpha)) * (num / den) * tail;
}

}  // namespace foresight
