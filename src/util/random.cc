#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace foresight {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

Rng::Rng(uint64_t seed) {
  // PCG recommended seeding: mix the seed into both state and stream.
  state_ = 0;
  inc_ = (seed << 1u) | 1u;
  NextUint32();
  state_ += 0x853c49e6748fea9bULL + seed;
  NextUint32();
}

uint32_t Rng::NextUint32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint64_t Rng::NextUint64() {
  return (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
}

uint64_t Rng::UniformInt(uint64_t bound) {
  FORESIGHT_CHECK(bound > 0);
  // Rejection sampling over the top of the range to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  FORESIGHT_CHECK(rate > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::Cauchy() {
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0 || u == 0.5);
  return std::tan(kPi * (u - 0.5));
}

double Rng::LogNormal(double mu_log, double sigma_log) {
  return std::exp(Normal(mu_log, sigma_log));
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  FORESIGHT_CHECK(n > 0);
  FORESIGHT_CHECK(s > 0.0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.assign(n, 0.0);
    double total = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = total;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= total;
  }
  double u = UniformDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

double Rng::StableSkewed(double alpha) {
  FORESIGHT_CHECK(alpha > 0.0 && alpha <= 2.0);
  // Chambers–Mallows–Stuck with beta = 1 (maximally right-skewed).
  double u = kPi * (UniformDouble() - 0.5);
  double w = Exponential(1.0);
  if (std::abs(alpha - 1.0) < 1e-12) {
    // alpha == 1, beta == 1 special case.
    double half_pi = kPi / 2.0;
    return (1.0 / half_pi) *
           ((half_pi + u) * std::tan(u) -
            std::log((half_pi * w * std::cos(u)) / (half_pi + u)));
  }
  double zeta = -std::tan(kPi * alpha / 2.0);  // beta = 1
  double xi = std::atan(-zeta) / alpha;
  double num = std::sin(alpha * (u + xi));
  double den = std::pow(std::cos(u), 1.0 / alpha);
  double tail = std::pow(std::cos(u - alpha * (u + xi)) / w, (1.0 - alpha) / alpha);
  return std::pow(1.0 + zeta * zeta, 1.0 / (2.0 * alpha)) * (num / den) * tail;
}

}  // namespace foresight
