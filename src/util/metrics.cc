#include "util/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace foresight {

namespace {

/// Shortest round-trip-safe rendering for export output.
std::string MetricDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string MetricUint(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

/// Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// (the registry's '.' separators in particular) maps to '_'.
std::string PrometheusName(const std::string& prefix, const std::string& name) {
  std::string out = prefix;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

LatencyHistogram::LatencyHistogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  cells_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

void LatencyHistogram::Record(double value) {
  size_t cell = bounds_.size();  // +Inf overflow bucket.
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      cell = i;
      break;
    }
  }
  cells_[cell].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = cells_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<double> DefaultLatencyBucketsMs() {
  std::vector<double> bounds;
  double bound = 0.001;
  for (int i = 0; i < 12; ++i) {
    bounds.push_back(bound);
    bound *= 4.0;
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  WriterLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  WriterLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bucket_bounds) {
  WriterLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bucket_bounds.empty()) bucket_bounds = DefaultLatencyBucketsMs();
    slot = std::make_unique<LatencyHistogram>(std::move(bucket_bounds));
  }
  return *slot;
}

uint64_t MetricsRegistry::RegisterCallback(const std::string& name,
                                           CallbackKind kind,
                                           std::function<double()> fn) {
  WriterLock lock(mutex_);
  uint64_t token = next_token_++;
  callbacks_[name] = CallbackEntry{kind, std::move(fn), token};
  return token;
}

void MetricsRegistry::RemoveCallback(const std::string& name, uint64_t token) {
  WriterLock lock(mutex_);
  auto it = callbacks_.find(name);
  if (it != callbacks_.end() && it->second.token == token) {
    callbacks_.erase(it);
  }
}

JsonValue MetricsRegistry::ToJson() const {
  ReaderLock lock(mutex_);
  JsonValue counters = JsonValue::Object();
  JsonValue gauges = JsonValue::Object();
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, JsonValue(counter->value()));
  }
  for (const auto& [name, entry] : callbacks_) {
    JsonValue value(entry.fn());
    if (entry.kind == CallbackKind::kCounter) {
      counters.Set(name, std::move(value));
    } else {
      gauges.Set(name, std::move(value));
    }
  }
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, JsonValue(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    JsonValue h = JsonValue::Object();
    h.Set("count", JsonValue(histogram->count()));
    h.Set("sum", JsonValue(histogram->sum()));
    JsonValue buckets = JsonValue::Array();
    const std::vector<double>& bounds = histogram->bucket_bounds();
    std::vector<uint64_t> counts = histogram->bucket_counts();
    for (size_t i = 0; i <= bounds.size(); ++i) {
      JsonValue bucket = JsonValue::Object();
      bucket.Set("le",
                 i < bounds.size() ? JsonValue(bounds[i]) : JsonValue("inf"));
      bucket.Set("count", JsonValue(counts[i]));
      buckets.Append(std::move(bucket));
    }
    h.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(h));
  }
  JsonValue root = JsonValue::Object();
  root.Set("counters", std::move(counters));
  root.Set("gauges", std::move(gauges));
  root.Set("histograms", std::move(histograms));
  return root;
}

std::string MetricsRegistry::ToPrometheusText(const std::string& prefix) const {
  ReaderLock lock(mutex_);
  std::string out;
  auto emit_scalar = [&](const std::string& name, const char* type,
                         const std::string& value) {
    std::string prom = PrometheusName(prefix, name);
    out += "# TYPE " + prom + " " + type + "\n";
    out += prom + " " + value + "\n";
  };
  for (const auto& [name, counter] : counters_) {
    emit_scalar(name, "counter", MetricUint(counter->value()));
  }
  for (const auto& [name, entry] : callbacks_) {
    emit_scalar(name,
                entry.kind == CallbackKind::kCounter ? "counter" : "gauge",
                MetricDouble(entry.fn()));
  }
  for (const auto& [name, gauge] : gauges_) {
    emit_scalar(name, "gauge", MetricDouble(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string prom = PrometheusName(prefix, name);
    out += "# TYPE " + prom + " histogram\n";
    const std::vector<double>& bounds = histogram->bucket_bounds();
    std::vector<uint64_t> counts = histogram->bucket_counts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += prom + "_bucket{le=\"" + MetricDouble(bounds[i]) + "\"} " +
             MetricUint(cumulative) + "\n";
    }
    cumulative += counts[bounds.size()];
    out += prom + "_bucket{le=\"+Inf\"} " + MetricUint(cumulative) + "\n";
    out += prom + "_sum " + MetricDouble(histogram->sum()) + "\n";
    out += prom + "_count " + MetricUint(histogram->count()) + "\n";
  }
  return out;
}

}  // namespace foresight
