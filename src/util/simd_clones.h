#ifndef FORESIGHT_UTIL_SIMD_CLONES_H_
#define FORESIGHT_UTIL_SIMD_CLONES_H_

// FORESIGHT_KERNEL_CLONES: function multi-versioning for hot numeric
// kernels. The annotated function is compiled once per target ("avx2" and
// "default") and dispatched by CPU feature at load time via ifunc.
//
// Bit-identity contract shared by every kernel that uses this macro: the
// AVX2 clone may vectorize only ACROSS independent accumulators/lanes, never
// reassociate a single accumulator's addition sequence — and AVX2 carries no
// FMA instruction set, so no fused multiply-add can alter roundings either.
// (AVX-512 is deliberately excluded: its feature set brings FMA, which would
// let the compiler contract mul+add pairs and break bit-identity with the
// scalar reference path.)
//
// Sanitizer builds must not multi-version: the ifunc resolver target_clones
// emits runs before the sanitizer runtime initializes and crashes at load.
// Plain scalar code there is fine — sanitizer jobs test semantics, not SIMD.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FORESIGHT_NO_KERNEL_CLONES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FORESIGHT_NO_KERNEL_CLONES 1
#endif
#endif

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(FORESIGHT_NO_KERNEL_CLONES)
#define FORESIGHT_KERNEL_CLONES \
  __attribute__((target_clones("avx2", "default")))
#else
#define FORESIGHT_KERNEL_CLONES
#endif

#endif  // FORESIGHT_UTIL_SIMD_CLONES_H_
