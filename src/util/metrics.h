#ifndef FORESIGHT_UTIL_METRICS_H_
#define FORESIGHT_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/sync.h"

namespace foresight {

/// Monotonic event counter. Increments are lock-free atomic adds; reading is
/// a relaxed load (export sees a near-point-in-time snapshot).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (bytes resident, queue depth, ...). Set/Add are
/// lock-free; Add uses a CAS loop so it works for double on every toolchain.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are frozen at construction
/// (plus an implicit +Inf overflow bucket), so Record() is allocation-free —
/// one linear bound scan over a small array and three relaxed atomic adds.
/// Designed for latency distributions; the default bounds cover 1 µs – 4 s
/// in powers of four (see DefaultLatencyBucketsMs).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(std::vector<double> bucket_bounds);

  /// Adds one observation. Thread-safe, lock-free, allocation-free.
  void Record(double value);

  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts; index bounds_.size() is the +Inf
  /// overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;  ///< bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Latency bucket bounds in milliseconds: 0.001, 0.004, ..., 4096 (powers of
/// four). Twelve buckets span sub-microsecond cache hits to multi-second
/// preprocessing passes.
std::vector<double> DefaultLatencyBucketsMs();

/// Whether a registered callback metric exports as a monotonic counter or a
/// point-in-time gauge.
enum class CallbackKind { kCounter, kGauge };

/// A named registry of counters, gauges, and histograms, plus callback
/// metrics that pull a value from a component at export time (used to surface
/// counters a component already maintains internally — e.g. the QueryCache's
/// sharded hit/miss/eviction counters — without double bookkeeping).
///
/// Thread safety: metric creation (counter()/gauge()/histogram()) takes the
/// registry lock exclusively; the returned references are stable for the
/// registry's lifetime, so hot paths resolve a metric once and then mutate it
/// lock-free. Export (ToJson / ToPrometheusText) holds the lock shared —
/// concurrent scrapes don't serialize — and is safe concurrently with
/// updates, seeing a near-point-in-time snapshot. The registry lock is the
/// TOP of the global lock hierarchy (util/sync.h): export invokes callback
/// metrics under it, and those may take component locks (query-cache shards).
///
/// Determinism note: everything in here is observability — values may come
/// from wall clocks and thread timing, and they must NEVER feed ranking or
/// any other query result payload (tools/lint_determinism.py enforces the
/// clock side of this).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. References remain valid for the registry's
  /// lifetime (entries are never removed).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bucket_bounds` applies only on first creation; empty selects
  /// DefaultLatencyBucketsMs().
  LatencyHistogram& histogram(const std::string& name,
                       std::vector<double> bucket_bounds = {});

  /// Registers (or replaces) a callback metric. Returns a registration token;
  /// RemoveCallback removes the entry only while the token is current, so a
  /// stale owner being destroyed cannot tear down its successor's metric.
  uint64_t RegisterCallback(const std::string& name, CallbackKind kind,
                            std::function<double()> fn);
  void RemoveCallback(const std::string& name, uint64_t token);

  /// Structured JSON export:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count": c, "sum": s,
  ///                          "buckets": [{"le": bound|"inf", "count": c}]}}}
  /// Callback metrics land in "counters" or "gauges" per their kind. Key
  /// order is deterministic for a given registry state (name-sorted within
  /// each storage class).
  JsonValue ToJson() const;

  /// Prometheus text exposition format. Metric names are prefixed with
  /// `prefix` and sanitized ('.' and other invalid characters become '_');
  /// histograms emit cumulative _bucket{le=...}, _sum, and _count series.
  std::string ToPrometheusText(const std::string& prefix = "foresight_") const;

 private:
  struct CallbackEntry {
    CallbackKind kind = CallbackKind::kGauge;
    std::function<double()> fn;
    uint64_t token = 0;
  };

  mutable SharedMutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FORESIGHT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      FORESIGHT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      FORESIGHT_GUARDED_BY(mutex_);
  std::map<std::string, CallbackEntry> callbacks_
      FORESIGHT_GUARDED_BY(mutex_);
  uint64_t next_token_ FORESIGHT_GUARDED_BY(mutex_) = 1;
};

}  // namespace foresight

#endif  // FORESIGHT_UTIL_METRICS_H_
