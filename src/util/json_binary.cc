#include "util/json_binary.h"

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace foresight {

namespace {

enum : uint8_t {
  kTagNull = 0x00,
  kTagFalse = 0x01,
  kTagTrue = 0x02,
  kTagNumber = 0x03,
  kTagString = 0x04,
  kTagArray = 0x05,
  kTagObject = 0x06,
  kTagPackedNumbers = 0x07,
};

void AppendVarint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void AppendF64(std::string& out, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

bool AllNumbers(const JsonValue& array) {
  for (size_t i = 0; i < array.size(); ++i) {
    if (!array.at(i).is_number()) return false;
  }
  return true;
}

void EncodeTo(const JsonValue& value, std::string& out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out.push_back(static_cast<char>(kTagNull));
      return;
    case JsonValue::Type::kBool:
      out.push_back(static_cast<char>(value.as_bool() ? kTagTrue : kTagFalse));
      return;
    case JsonValue::Type::kNumber:
      out.push_back(static_cast<char>(kTagNumber));
      AppendF64(out, value.as_number());
      return;
    case JsonValue::Type::kString: {
      out.push_back(static_cast<char>(kTagString));
      const std::string& s = value.as_string();
      AppendVarint(out, s.size());
      out.append(s);
      return;
    }
    case JsonValue::Type::kArray: {
      // Packed storage short-circuits the per-element walk; the bytes are
      // identical to encoding the same numbers element-wise below.
      if (const std::vector<double>* packed = value.packed_numbers()) {
        out.push_back(static_cast<char>(kTagPackedNumbers));
        AppendVarint(out, packed->size());
        out.reserve(out.size() + packed->size() * 8);
        for (double v : *packed) AppendF64(out, v);
        return;
      }
      const size_t n = value.size();
      if (n > 0 && AllNumbers(value)) {
        out.push_back(static_cast<char>(kTagPackedNumbers));
        AppendVarint(out, n);
        for (size_t i = 0; i < n; ++i) AppendF64(out, value.at(i).as_number());
        return;
      }
      out.push_back(static_cast<char>(kTagArray));
      AppendVarint(out, n);
      for (size_t i = 0; i < n; ++i) EncodeTo(value.at(i), out);
      return;
    }
    case JsonValue::Type::kObject: {
      out.push_back(static_cast<char>(kTagObject));
      const auto& items = value.items();
      AppendVarint(out, items.size());
      for (const auto& [key, member] : items) {
        AppendVarint(out, key.size());
        out.append(key);
        EncodeTo(member, out);
      }
      return;
    }
  }
}

class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : data_(bytes) {}

  StatusOr<JsonValue> DecodeDocument() {
    FORESIGHT_ASSIGN_OR_RETURN(JsonValue value, DecodeValue(0));
    if (pos_ != data_.size()) {
      return Status::InvalidArgument(
          "binary json: trailing bytes after document");
    }
    return value;
  }

 private:
  size_t Remaining() const { return data_.size() - pos_; }

  StatusOr<uint8_t> ReadByte() {
    if (Remaining() < 1) {
      return Status::InvalidArgument("binary json: truncated input");
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  StatusOr<uint64_t> ReadVarint() {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      FORESIGHT_ASSIGN_OR_RETURN(uint8_t byte, ReadByte());
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        if (shift > 0 && byte == 0) {
          return Status::InvalidArgument(
              "binary json: non-canonical varint padding");
        }
        return value;
      }
    }
    return Status::InvalidArgument("binary json: varint exceeds 64 bits");
  }

  StatusOr<double> ReadF64() {
    if (Remaining() < 8) {
      return Status::InvalidArgument("binary json: truncated number");
    }
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 8;
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  StatusOr<std::string> ReadString() {
    FORESIGHT_ASSIGN_OR_RETURN(uint64_t length, ReadVarint());
    if (length > Remaining()) {
      return Status::InvalidArgument(
          "binary json: string length exceeds remaining bytes");
    }
    std::string value(data_.substr(pos_, length));
    pos_ += length;
    return value;
  }

  StatusOr<JsonValue> DecodeValue(int depth) {
    if (depth > kJsonBinaryMaxDepth) {
      return Status::InvalidArgument("binary json: nesting too deep");
    }
    FORESIGHT_ASSIGN_OR_RETURN(uint8_t tag, ReadByte());
    switch (tag) {
      case kTagNull:
        return JsonValue();
      case kTagFalse:
        return JsonValue(false);
      case kTagTrue:
        return JsonValue(true);
      case kTagNumber: {
        FORESIGHT_ASSIGN_OR_RETURN(double number, ReadF64());
        return JsonValue(number);
      }
      case kTagString: {
        FORESIGHT_ASSIGN_OR_RETURN(std::string text, ReadString());
        return JsonValue(std::move(text));
      }
      case kTagPackedNumbers: {
        FORESIGHT_ASSIGN_OR_RETURN(uint64_t count, ReadVarint());
        // Each element takes exactly 8 payload bytes; reject before
        // allocating anything a hostile count could inflate.
        if (count > Remaining() / 8) {
          return Status::InvalidArgument(
              "binary json: packed array count exceeds remaining bytes");
        }
        std::vector<double> values;
        values.reserve(count);
        for (uint64_t i = 0; i < count; ++i) {
          FORESIGHT_ASSIGN_OR_RETURN(double number, ReadF64());
          values.push_back(number);
        }
        return JsonValue::PackedNumberArray(std::move(values));
      }
      case kTagArray: {
        FORESIGHT_ASSIGN_OR_RETURN(uint64_t count, ReadVarint());
        // Every element costs at least its 1-byte tag.
        if (count > Remaining()) {
          return Status::InvalidArgument(
              "binary json: array count exceeds remaining bytes");
        }
        JsonValue array = JsonValue::Array();
        for (uint64_t i = 0; i < count; ++i) {
          FORESIGHT_ASSIGN_OR_RETURN(JsonValue element, DecodeValue(depth + 1));
          array.Append(std::move(element));
        }
        return array;
      }
      case kTagObject: {
        FORESIGHT_ASSIGN_OR_RETURN(uint64_t count, ReadVarint());
        // Every member costs at least a key-length varint byte plus a tag.
        if (count > Remaining() / 2) {
          return Status::InvalidArgument(
              "binary json: object count exceeds remaining bytes");
        }
        JsonValue object = JsonValue::Object();
        for (uint64_t i = 0; i < count; ++i) {
          FORESIGHT_ASSIGN_OR_RETURN(std::string key, ReadString());
          if (object.Has(key)) {
            return Status::InvalidArgument("binary json: duplicate key '" +
                                           key + "'");
          }
          FORESIGHT_ASSIGN_OR_RETURN(JsonValue member, DecodeValue(depth + 1));
          object.Set(std::move(key), std::move(member));
        }
        return object;
      }
      default:
        return Status::InvalidArgument("binary json: unknown tag " +
                                       std::to_string(tag));
    }
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonBinaryEncode(const JsonValue& value) {
  std::string out;
  EncodeTo(value, out);
  return out;
}

StatusOr<JsonValue> JsonBinaryDecode(std::string_view bytes) {
  Decoder decoder(bytes);
  return decoder.DecodeDocument();
}

}  // namespace foresight
