#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace foresight {

JsonValue JsonValue::PackedNumberArray(std::vector<double> values) {
  JsonValue v;
  v.type_ = Type::kArray;
  if (!values.empty()) {
    v.packed_ = true;
    v.packed_numbers_ = std::move(values);
  }
  return v;
}

void JsonValue::UnpackNumbers() const {
  array_.reserve(packed_numbers_.size());
  for (double number : packed_numbers_) array_.emplace_back(number);
  packed_numbers_.clear();
  packed_numbers_.shrink_to_fit();
  packed_ = false;
}

void JsonValue::Append(JsonValue value) {
  FORESIGHT_CHECK(type_ == Type::kArray);
  if (packed_) {
    if (value.is_number()) {
      packed_numbers_.push_back(value.as_number());
      return;
    }
    UnpackNumbers();
  }
  array_.push_back(std::move(value));
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) {
    return packed_ ? packed_numbers_.size() : array_.size();
  }
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t index) const {
  FORESIGHT_CHECK(type_ == Type::kArray);
  if (packed_) UnpackNumbers();
  FORESIGHT_CHECK(index < array_.size());
  return array_[index];
}

void JsonValue::Set(std::string key, JsonValue value) {
  FORESIGHT_CHECK(type_ == Type::kObject);
  for (auto& [existing_key, existing_value] : object_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [existing_key, value] : object_) {
    if (existing_key == key) return &value;
  }
  return nullptr;
}

bool JsonValue::Remove(std::string_view key) {
  if (type_ != Type::kObject) return false;
  for (auto it = object_.begin(); it != object_.end(); ++it) {
    if (it->first == key) {
      object_.erase(it);
      return true;
    }
  }
  return false;
}

std::string JsonEscape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string& out, double value) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; emit null, matching common serializer behaviour.
    out += "null";
    return;
  }
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    out += buffer;
  } else {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out += buffer;
  }
}

void AppendIndent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      out += '"';
      out += JsonEscape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (packed_) {
        // Byte-identical to dumping the element-wise representation, without
        // forcing the unpack.
        out += '[';
        for (size_t i = 0; i < packed_numbers_.size(); ++i) {
          if (i > 0) out += ',';
          AppendIndent(out, indent, depth + 1);
          AppendNumber(out, packed_numbers_[i]);
        }
        AppendIndent(out, indent, depth);
        out += ']';
        break;
      }
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        AppendIndent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        AppendIndent(out, indent, depth + 1);
        out += '"';
        out += JsonEscape(key);
        out += "\":";
        if (indent >= 0) out += ' ';
        value.DumpTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parsing recurses once per nesting level, so untrusted input like
  /// "[[[[..." could otherwise exhaust the stack. 128 levels is far beyond
  /// any document this codebase produces.
  static constexpr int kMaxNestingDepth = 128;

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    FORESIGHT_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxNestingDepth) {
      return Error("nesting depth exceeds " +
                   std::to_string(kMaxNestingDepth));
    }
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      FORESIGHT_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      FORESIGHT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      FORESIGHT_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    for (;;) {
      SkipWhitespace();
      FORESIGHT_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are passed through as two 3-byte sequences).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool saw_digit = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        saw_digit = true;
      }
      ++pos_;
    }
    if (!saw_digit) return Error("invalid number");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    if (std::isinf(value)) {
      // Overflowing literals (e.g. "1e999") would deserialize as infinity,
      // which Dump() cannot represent — reject instead of round-tripping
      // to null.
      return Error("number out of range");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace foresight
