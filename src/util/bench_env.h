#ifndef FORESIGHT_UTIL_BENCH_ENV_H_
#define FORESIGHT_UTIL_BENCH_ENV_H_

#include <cstddef>
#include <string>

#include "util/json.h"

namespace foresight {

/// Machine/build facts every benchmark JSON must embed so numbers are
/// interpretable after the fact: a "0.5x speedup at 8 workers" is a bug on an
/// 8-core box and expected oversubscription on a 1-core one.
///   {"hardware_concurrency": N, "cpu_model": "...", "compiler": "...",
///    "build_type": "..."}
JsonValue BenchEnvironmentJson();

/// CPU model string from /proc/cpuinfo ("unknown" when unavailable).
std::string CpuModelName();

/// Prints a stderr warning when `workers` exceeds hardware_concurrency —
/// timings at that point measure context-switching, not scaling. Returns true
/// if oversubscribed.
bool WarnIfOversubscribed(size_t workers);

}  // namespace foresight

#endif  // FORESIGHT_UTIL_BENCH_ENV_H_
