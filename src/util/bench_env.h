#ifndef FORESIGHT_UTIL_BENCH_ENV_H_
#define FORESIGHT_UTIL_BENCH_ENV_H_

#include <cstddef>
#include <string>

#include "util/json.h"

namespace foresight {

/// Machine/build facts every benchmark JSON must embed so numbers are
/// interpretable after the fact: a "0.5x speedup at 8 workers" is a bug on an
/// 8-core box and expected oversubscription on a 1-core one.
///   {"hardware_concurrency": N, "cpu_model": "...", "compiler": "...",
///    "build_type": "...", "max_workers_requested": W,
///    "scaling_claims_valid": bool}
/// `max_workers_requested` is the largest worker count any measurement in the
/// emitting bench used; scaling_claims_valid is ScalingClaimsValid(W). Pass 0
/// for single-threaded benches (flag stays true).
JsonValue BenchEnvironmentJson(size_t max_workers_requested = 0);

/// True when this machine can substantiate a parallel-scaling claim at
/// `workers` threads: hardware_concurrency >= workers. On an undersized box
/// (e.g. a 1-core CI runner) multi-worker timings measure context-switching,
/// so any "Nx at W workers" line derived from them is invalid.
bool ScalingClaimsValid(size_t workers);

/// CPU model string from /proc/cpuinfo ("unknown" when unavailable).
std::string CpuModelName();

/// Prints a LOUD stderr warning when `workers` exceeds hardware_concurrency —
/// timings at that point measure context-switching, not scaling, and any
/// bench JSON recorded this way carries scaling_claims_valid = false. Returns
/// true if oversubscribed.
bool WarnIfOversubscribed(size_t workers);

}  // namespace foresight

#endif  // FORESIGHT_UTIL_BENCH_ENV_H_
