#include "util/bench_env.h"

#include <cstdio>
#include <fstream>
#include <string_view>
#include <thread>

#include "util/string_util.h"

namespace foresight {

namespace {

std::string CompilerString() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string BuildTypeString() {
#ifdef FORESIGHT_BUILD_TYPE
  return FORESIGHT_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release(assumed)";
#else
  return "Debug(assumed)";
#endif
}

}  // namespace

std::string CpuModelName() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string_view key = Trim(std::string_view(line).substr(0, colon));
    if (key == "model name" || key == "Model" || key == "Hardware") {
      return std::string(Trim(std::string_view(line).substr(colon + 1)));
    }
  }
  return "unknown";
}

JsonValue BenchEnvironmentJson() {
  JsonValue env = JsonValue::Object();
  env.Set("hardware_concurrency",
          static_cast<size_t>(std::thread::hardware_concurrency()));
  env.Set("cpu_model", CpuModelName());
  env.Set("compiler", CompilerString());
  env.Set("build_type", BuildTypeString());
  return env;
}

bool WarnIfOversubscribed(size_t workers) {
  size_t cores = static_cast<size_t>(std::thread::hardware_concurrency());
  if (cores == 0 || workers <= cores) return false;
  std::fprintf(stderr,
               "WARNING: %zu workers on %zu hardware thread(s) — timings "
               "beyond %zu workers measure oversubscription, not scaling\n",
               workers, cores, cores);
  return true;
}

}  // namespace foresight
