#include "util/bench_env.h"

#include <cstdio>
#include <fstream>
#include <string_view>
#include <thread>

#include "util/string_util.h"

namespace foresight {

namespace {

std::string CompilerString() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string BuildTypeString() {
#ifdef FORESIGHT_BUILD_TYPE
  return FORESIGHT_BUILD_TYPE;
#elif defined(NDEBUG)
  return "Release(assumed)";
#else
  return "Debug(assumed)";
#endif
}

}  // namespace

std::string CpuModelName() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string_view key = Trim(std::string_view(line).substr(0, colon));
    if (key == "model name" || key == "Model" || key == "Hardware") {
      return std::string(Trim(std::string_view(line).substr(colon + 1)));
    }
  }
  return "unknown";
}

JsonValue BenchEnvironmentJson(size_t max_workers_requested) {
  JsonValue env = JsonValue::Object();
  env.Set("hardware_concurrency",
          static_cast<size_t>(std::thread::hardware_concurrency()));
  env.Set("cpu_model", CpuModelName());
  env.Set("compiler", CompilerString());
  env.Set("build_type", BuildTypeString());
  env.Set("max_workers_requested", max_workers_requested);
  env.Set("scaling_claims_valid", ScalingClaimsValid(max_workers_requested));
  return env;
}

bool ScalingClaimsValid(size_t workers) {
  size_t cores = static_cast<size_t>(std::thread::hardware_concurrency());
  // Unknown core count cannot substantiate a multi-worker claim either.
  if (workers <= 1) return true;
  return cores >= workers;
}

bool WarnIfOversubscribed(size_t workers) {
  size_t cores = static_cast<size_t>(std::thread::hardware_concurrency());
  if (cores == 0 || workers <= cores) return false;
  std::fprintf(stderr,
               "================================================================\n"
               "WARNING: %zu workers on %zu hardware thread(s) — timings "
               "beyond\n%zu workers measure oversubscription, not scaling. "
               "Parallel-speedup\nclaims from this run are INVALID "
               "(scaling_claims_valid = false in\nthe emitted JSON).\n"
               "================================================================\n",
               workers, cores, cores);
  return true;
}

}  // namespace foresight
