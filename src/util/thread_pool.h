#ifndef FORESIGHT_UTIL_THREAD_POOL_H_
#define FORESIGHT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace foresight {

class Counter;
class Gauge;
class LatencyHistogram;
class MetricsRegistry;

/// A persistent pool of worker threads with one blocking primitive,
/// `ParallelFor`. Replaces the previous per-query `std::thread` spawn/join
/// (the threads outlive any single call, so a query pays zero thread-creation
/// cost) and gives every hot path — preprocessing, candidate evaluation,
/// pairwise overviews, carousel building — one shared, bounded set of
/// threads instead of each layer spawning its own.
///
/// Scheduling model: work-sharing, not work-stealing. `ParallelFor` splits
/// [begin, end) into fixed chunks of `grain` indices; idle workers (and the
/// calling thread itself) repeatedly claim the next unclaimed chunk via an
/// atomic counter. Chunk *boundaries* are therefore deterministic; only the
/// chunk-to-thread assignment varies between runs, so callers that write
/// results into position-indexed slots get run-to-run identical output.
///
/// Reentrancy: `ParallelFor` may be called from inside a task running on this
/// pool (e.g. the explorer fans out per-class queries, and each query fans
/// out per-candidate evaluation). The calling thread always participates in
/// executing its own chunks, so nested calls make progress even when every
/// worker is busy — there is no deadlock by construction.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism (including the calling thread of
  /// a ParallelFor). 0 resolves to std::thread::hardware_concurrency().
  /// With a resolved value of 1 no threads are spawned and every ParallelFor
  /// runs inline on the caller.
  explicit ThreadPool(size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Total parallelism (resolved, >= 1). Spawned threads are num_threads()-1.
  size_t num_threads() const { return num_threads_; }

  /// Invokes `fn(chunk_begin, chunk_end)` over consecutive chunks of at most
  /// `grain` indices covering [begin, end), potentially concurrently, and
  /// blocks until every chunk has finished. The calling thread participates.
  /// If any invocation throws, the first exception (from the lowest-numbered
  /// chunk that threw) is rethrown here after all chunks complete; `fn` must
  /// therefore be safe to run for chunks after a failing one.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Enqueues a standalone fire-and-forget task for a spawned worker (used by
  /// the serve front-end to drain its admission queue on engine workers).
  /// Returns false without enqueuing when the pool spawned no workers
  /// (num_threads() == 1) — the task would never run; callers must provide
  /// their own thread in that configuration. Tasks still queued at
  /// destruction are drained, not dropped, so a submitted task always runs
  /// as long as the pool outlives the Submit call; `task` must not throw.
  bool Submit(std::function<void()> task);

  /// Points the pool at a registry for observability: tasks executed, queue
  /// depth, ParallelFor count and wall time, and a static thread-count gauge
  /// ("thread_pool.*"). Pass nullptr to detach. The pool shares ownership of
  /// the registry, so workers draining the queue during shutdown can still
  /// touch their metrics even if every other owner is gone. When detached —
  /// the default — ParallelFor reads no clock, keeping metrics-free runs
  /// clock-free.
  void AttachMetrics(std::shared_ptr<MetricsRegistry> registry);

 private:
  struct ForJob;

  void WorkerLoop();
  static void RunJob(ForJob& job);

  size_t num_threads_;
  std::vector<std::thread> threads_;

  Mutex queue_mutex_;
  CondVar queue_cv_;
  std::deque<std::function<void()>> queue_ FORESIGHT_GUARDED_BY(queue_mutex_);
  bool stopping_ FORESIGHT_GUARDED_BY(queue_mutex_) = false;

  // Observability hooks; null when no registry is attached. Release stores /
  // acquire loads: each pointer publishes a freshly constructed metric, so
  // readers need the happens-before edge to its construction (a worker
  // observing a half-attached *set* of hooks is fine — a few early events go
  // uncounted — but observing an unconstructed metric is not). AttachMetrics
  // is a setup-time call (not safe against concurrent AttachMetrics), but
  // workers may hold raw hook pointers at any moment, so every registry ever
  // attached is retained until the pool is destroyed — see retired_registries_.
  std::shared_ptr<MetricsRegistry> metrics_registry_;
  /// Previously attached registries, kept alive because a worker may still be
  /// about to touch a Counter/Gauge it resolved from one of them. Bounded by
  /// the number of AttachMetrics calls (in practice: one).
  std::vector<std::shared_ptr<MetricsRegistry>> retired_registries_;
  std::atomic<Counter*> tasks_executed_{nullptr};
  std::atomic<Counter*> parallel_fors_{nullptr};
  std::atomic<LatencyHistogram*> parallel_for_ms_{nullptr};
  std::atomic<Gauge*> queue_depth_{nullptr};
};

}  // namespace foresight

#endif  // FORESIGHT_UTIL_THREAD_POOL_H_
