#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>

#include "util/metrics.h"
#include "util/timer.h"

namespace foresight {

/// Shared state of one ParallelFor call. Kept alive by shared_ptr until the
/// last helper task drops it, so helpers dequeued after the call already
/// returned find `next_chunk >= num_chunks` and exit immediately.
struct ThreadPool::ForJob {
  size_t begin = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  size_t end = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;

  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};

  Mutex mutex;
  CondVar done_cv;
  // First exception by chunk order (not completion order), so a rethrown
  // error is deterministic across runs.
  std::exception_ptr error FORESIGHT_GUARDED_BY(mutex);
  size_t error_chunk FORESIGHT_GUARDED_BY(mutex) = SIZE_MAX;
};

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
  }
  num_threads_ = num_threads == 0 ? 1 : num_threads;
  threads_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::AttachMetrics(std::shared_ptr<MetricsRegistry> registry) {
  // Retire (never free) whatever registry the hooks currently point into: a
  // worker may have loaded a Counter* before the stores below and increment
  // it after them, so dropping the last reference here would be a
  // use-after-free on that worker.
  if (metrics_registry_ != nullptr) {
    retired_registries_.push_back(std::move(metrics_registry_));
  }
  if (registry == nullptr) {
    tasks_executed_.store(nullptr, std::memory_order_release);
    parallel_fors_.store(nullptr, std::memory_order_release);
    parallel_for_ms_.store(nullptr, std::memory_order_release);
    queue_depth_.store(nullptr, std::memory_order_release);
    return;
  }
  metrics_registry_ = registry;
  registry->gauge("thread_pool.threads").Set(static_cast<double>(num_threads_));
  // Release stores: each hook points at a freshly constructed metric, so the
  // publication must carry a happens-before edge to its construction (a
  // worker's acquire load may be its first sight of that heap object).
  tasks_executed_.store(&registry->counter("thread_pool.tasks_executed_total"),
                        std::memory_order_release);
  parallel_fors_.store(&registry->counter("thread_pool.parallel_fors_total"),
                       std::memory_order_release);
  parallel_for_ms_.store(&registry->histogram("thread_pool.parallel_for_ms"),
                         std::memory_order_release);
  queue_depth_.store(&registry->gauge("thread_pool.queue_depth"),
                     std::memory_order_release);
}

bool ThreadPool::Submit(std::function<void()> task) {
  if (num_threads_ <= 1) return false;
  {
    MutexLock lock(queue_mutex_);
    queue_.emplace_back(std::move(task));
    if (Gauge* depth = queue_depth_.load(std::memory_order_acquire)) {
      depth->Set(static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.NotifyOne();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(queue_mutex_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(queue_mutex_);
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      if (Gauge* depth = queue_depth_.load(std::memory_order_acquire)) {
        depth->Set(static_cast<double>(queue_.size()));
      }
    }
    if (Counter* tasks = tasks_executed_.load(std::memory_order_acquire)) {
      tasks->Increment();
    }
    task();
  }
}

void ThreadPool::RunJob(ForJob& job) {
  for (;;) {
    size_t chunk = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) return;
    size_t chunk_begin = job.begin + chunk * job.grain;
    size_t chunk_end = std::min(job.end, chunk_begin + job.grain);
    try {
      (*job.fn)(chunk_begin, chunk_end);
    } catch (...) {
      MutexLock lock(job.mutex);
      if (chunk < job.error_chunk) {
        job.error_chunk = chunk;
        job.error = std::current_exception();
      }
    }
    if (job.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      MutexLock lock(job.mutex);
      job.done_cv.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;

  LatencyHistogram* for_ms = parallel_for_ms_.load(std::memory_order_acquire);
  if (Counter* fors = parallel_fors_.load(std::memory_order_acquire)) {
    fors->Increment();
  }
  // ParallelFor wall time is observability-only; the clock read is gated on
  // an attached registry, so metrics-free runs stay clock-free.
  // determinism-ok: observability timing, never feeds ranking
  WallTimer timer{kDeferredStart};
  if (for_ms != nullptr) timer.Restart();

  size_t span = end - begin;
  size_t num_chunks = (span + grain - 1) / grain;
  if (num_threads_ <= 1 || num_chunks <= 1) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      size_t chunk_begin = begin + chunk * grain;
      fn(chunk_begin, std::min(end, chunk_begin + grain));
    }
    if (for_ms != nullptr) for_ms->Record(timer.ElapsedMillis());
    return;
  }

  auto job = std::make_shared<ForJob>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;

  size_t helpers = std::min(num_threads_ - 1, num_chunks - 1);
  {
    MutexLock lock(queue_mutex_);
    for (size_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([job] { RunJob(*job); });
    }
    if (Gauge* depth = queue_depth_.load(std::memory_order_acquire)) {
      depth->Set(static_cast<double>(queue_.size()));
    }
  }
  if (helpers == 1) {
    queue_cv_.NotifyOne();
  } else {
    queue_cv_.NotifyAll();
  }

  // The caller claims chunks too, which also makes nested ParallelFor calls
  // deadlock-free: progress never depends on a free worker existing.
  RunJob(*job);

  std::exception_ptr error;
  {
    MutexLock lock(job->mutex);
    while (job->chunks_done.load(std::memory_order_acquire) !=
           job->num_chunks) {
      job->done_cv.Wait(job->mutex);
    }
    // Steal the error so this thread owns the exception object's lifetime: a
    // straggler helper dropping the last ForJob reference must not be the one
    // to destroy an exception the caller is still examining.
    error = std::move(job->error);
  }
  if (for_ms != nullptr) for_ms->Record(timer.ElapsedMillis());
  if (error) std::rethrow_exception(error);
}

}  // namespace foresight
