#ifndef FORESIGHT_UTIL_STATUS_H_
#define FORESIGHT_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/logging.h"

namespace foresight {

/// Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  kParseError = 9,
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// Foresight does not throw exceptions across API boundaries; fallible
/// operations return `Status` (or `StatusOr<T>` when they produce a value).
/// A default-constructed `Status` is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or an error `Status`; never both, never neither.
///
/// Accessing `value()` on an error-state `StatusOr` is a programming error
/// (checked by assertion in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return 42;` or `return Status::InvalidArgument(...)`.
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    FORESIGHT_DCHECK(!status_.ok() &&
                     "StatusOr constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FORESIGHT_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    FORESIGHT_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    FORESIGHT_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace foresight

/// Propagates a non-OK `Status` from the current function.
#define FORESIGHT_RETURN_IF_ERROR(expr)             \
  do {                                              \
    ::foresight::Status _status = (expr);           \
    if (!_status.ok()) return _status;              \
  } while (false)

/// Evaluates a `StatusOr<T>` expression, assigning the value on success and
/// propagating the error otherwise. Usage:
///   FORESIGHT_ASSIGN_OR_RETURN(auto table, CsvReader::ReadFile(path));
#define FORESIGHT_ASSIGN_OR_RETURN(lhs, expr)                      \
  FORESIGHT_ASSIGN_OR_RETURN_IMPL_(                                \
      FORESIGHT_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define FORESIGHT_STATUS_CONCAT_INNER_(a, b) a##b
#define FORESIGHT_STATUS_CONCAT_(a, b) FORESIGHT_STATUS_CONCAT_INNER_(a, b)
#define FORESIGHT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#endif  // FORESIGHT_UTIL_STATUS_H_
