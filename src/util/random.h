#ifndef FORESIGHT_UTIL_RANDOM_H_
#define FORESIGHT_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace foresight {

/// Deterministic pseudo-random number generator (PCG-XSH-RR 64/32).
///
/// Foresight seeds every stochastic component (sketches, samplers, data
/// generators) explicitly so that preprocessing, experiments, and tests are
/// reproducible. The generator is small, fast, and statistically strong enough
/// for sketching; it is NOT cryptographically secure.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Two generators built from the
  /// same seed produce identical streams.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Uniform 32-bit value.
  uint32_t NextUint32();

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound), bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal deviate (Marsaglia–Tsang ziggurat, 128 layers). The
  /// common case costs one 32-bit draw, one table compare, and one multiply;
  /// layer-edge and tail cases fall back to exact rejection sampling.
  double Normal();

  /// Fills out[0, n) with standard normal deviates — the identical sequence
  /// n calls to Normal() would produce, but generated in a batch loop that
  /// lets the generator's state recurrence overlap the ziggurat table work.
  /// This is the hot path for random panel generation.
  void FillNormals(double* out, size_t n);

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential deviate with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Standard Cauchy deviate (heavy-tailed; used by heavy-tail generators and
  /// the stable-distribution entropy sketch).
  double Cauchy();

  /// Log-normal deviate: exp(Normal(mu_log, sigma_log)).
  double LogNormal(double mu_log, double sigma_log);

  /// Zipf-distributed integer in [0, n) with exponent s > 0 (inverse-CDF over
  /// precomputed weights is the caller's job for hot loops; this method is
  /// O(log n) via binary search over a lazily built CDF per (n, s) pair).
  uint64_t Zipf(uint64_t n, double s);

  /// Skewed maximally-right alpha-stable deviate with alpha in (0, 2], beta=1,
  /// via the Chambers–Mallows–Stuck method. Used by the entropy sketch.
  double StableSkewed(double alpha);

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  // Wedge-rejection / tail-inversion path of the ziggurat, entered when the
  // one-compare fast path fails for draw `hz` in layer `i`.
  double NormalSlow(int32_t hz, size_t i);

  uint64_t state_;
  uint64_t inc_;
  // Lazily built Zipf CDF, reused while (n, s) stay fixed.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace foresight

#endif  // FORESIGHT_UTIL_RANDOM_H_
