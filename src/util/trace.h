#ifndef FORESIGHT_UTIL_TRACE_H_
#define FORESIGHT_UTIL_TRACE_H_

#include <array>
#include <cstddef>
#include <string>

#include "util/json.h"
#include "util/timer.h"

namespace foresight {

class MetricsRegistry;

/// The five pipeline stages of one insight query, in serving order. The
/// serving layer owns kCacheLookup; the engine owns the other four.
enum class QueryStage : size_t {
  kResolve = 0,     ///< Validation + default resolution (ResolveQuery).
  kCacheLookup,     ///< QuerySession cache probe (zero when unserved).
  kEnumerate,       ///< Candidate enumeration + structural filters.
  kEvaluate,        ///< Metric evaluation over the candidate set.
  kAssemble,        ///< Score filters, ranking, top-k, result build.
};

inline constexpr size_t kNumQueryStages = 5;

/// Stable lowercase stage name ("resolve", "cache_lookup", ...), used for
/// metric names and trace export.
const char* QueryStageName(QueryStage stage);

/// Per-query stage timings, accumulated by StageSpan and attached to
/// InsightQueryResult telemetry. Timings are observability only: they are
/// wall-clock derived and MUST never feed ranking or any other result
/// payload. All-zero when the engine was built with collect_metrics = false.
///
/// On a QuerySession cache hit, the engine-side stage timings describe the
/// call that originally computed the payload, while kCacheLookup (and the
/// result's elapsed_ms) describe the serving call.
struct QueryTrace {
  std::array<double, kNumQueryStages> stage_ms{};
  /// End-to-end latency of the call, mirroring InsightQueryResult::elapsed_ms.
  double total_ms = 0.0;

  double stage(QueryStage s) const { return stage_ms[static_cast<size_t>(s)]; }

  /// {"total_ms": t, "stages": {"resolve": ms, ...}} with all five stages
  /// always present.
  JsonValue ToJson() const;
};

/// RAII span: adds the wall time between construction and destruction to one
/// stage of a QueryTrace. A null trace disables the span entirely — no clock
/// is read — which is how collect_metrics = false stays clock-free.
class StageSpan {
 public:
  StageSpan(QueryTrace* trace, QueryStage stage) : trace_(trace), stage_(stage) {
    if (trace_ != nullptr) timer_.Restart();
  }
  ~StageSpan() {
    if (trace_ != nullptr) {
      trace_->stage_ms[static_cast<size_t>(stage_)] += timer_.ElapsedMillis();
    }
  }
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  QueryTrace* trace_;
  QueryStage stage_;
  // determinism-ok: observability span; timings never feed ranking
  WallTimer timer_{kDeferredStart};
};

/// Folds one query's stage timings into the registry's per-stage latency
/// histograms ("engine.stage.<stage>_ms"). Stages that never ran (0 ms and
/// never entered) still record a zero sample only when `record_zeros` is set;
/// by default they are skipped so histograms reflect work actually done.
void AccumulateTrace(const QueryTrace& trace, MetricsRegistry& registry,
                     bool record_zeros = false);

}  // namespace foresight

#endif  // FORESIGHT_UTIL_TRACE_H_
