#include "util/trace.h"

#include "util/metrics.h"

namespace foresight {

const char* QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kResolve:
      return "resolve";
    case QueryStage::kCacheLookup:
      return "cache_lookup";
    case QueryStage::kEnumerate:
      return "enumerate";
    case QueryStage::kEvaluate:
      return "evaluate";
    case QueryStage::kAssemble:
      return "assemble";
  }
  return "unknown";
}

JsonValue QueryTrace::ToJson() const {
  JsonValue stages = JsonValue::Object();
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    stages.Set(QueryStageName(static_cast<QueryStage>(i)),
               JsonValue(stage_ms[i]));
  }
  JsonValue root = JsonValue::Object();
  root.Set("total_ms", JsonValue(total_ms));
  root.Set("stages", std::move(stages));
  return root;
}

void AccumulateTrace(const QueryTrace& trace, MetricsRegistry& registry,
                     bool record_zeros) {
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    if (trace.stage_ms[i] == 0.0 && !record_zeros) continue;
    std::string name = "engine.stage.";
    name += QueryStageName(static_cast<QueryStage>(i));
    name += "_ms";
    registry.histogram(name).Record(trace.stage_ms[i]);
  }
}

}  // namespace foresight
