#ifndef FORESIGHT_DATA_CSV_H_
#define FORESIGHT_DATA_CSV_H_

#include <string>
#include <string_view>

#include "data/table.h"
#include "util/status.h"

namespace foresight {

/// Options controlling CSV parsing and type inference.
struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names. When false, columns are named "c0", "c1"...
  bool has_header = true;
  /// A column whose non-missing tokens all parse as numbers becomes numeric,
  /// UNLESS it has at most this many distinct integer values AND
  /// `integer_codes_as_categorical` is set (useful for coded survey data).
  bool integer_codes_as_categorical = false;
  size_t max_integer_code_cardinality = 12;
};

/// RFC-4180-style CSV reader with automatic type inference.
///
/// - Quoted fields may contain delimiters, escaped quotes ("") and newlines.
/// - Conventional missing markers (empty, NA, N/A, NaN, null, none, ?) become
///   nulls.
/// - A column is numeric iff every non-missing token parses as a double;
///   otherwise it is categorical.
class CsvReader {
 public:
  /// Parses CSV text into a table.
  static StatusOr<DataTable> ReadString(std::string_view text,
                                        const CsvOptions& options = {});

  /// Reads and parses a CSV file.
  static StatusOr<DataTable> ReadFile(const std::string& path,
                                      const CsvOptions& options = {});
};

/// CSV writer, the inverse of CsvReader: nulls are written as empty fields,
/// fields containing the delimiter, quotes or newlines are quoted.
class CsvWriter {
 public:
  static std::string WriteString(const DataTable& table,
                                 const CsvOptions& options = {});
  static Status WriteFile(const DataTable& table, const std::string& path,
                          const CsvOptions& options = {});
};

}  // namespace foresight

#endif  // FORESIGHT_DATA_CSV_H_
