#ifndef FORESIGHT_DATA_SCHEMA_H_
#define FORESIGHT_DATA_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace foresight {

/// Logical attribute type. Following the paper (§2.2), the set of attribute
/// columns splits into numeric columns `B` and categorical columns `C`.
enum class ColumnType {
  kNumeric,
  kCategorical,
};

const char* ColumnTypeToString(ColumnType type);

/// Name, type, and metadata of one attribute column.
///
/// `tags` are free-form semantic labels ("currency", "date", "identifier",
/// "percentage", ...). The paper's §2.1 names metadata constraints as future
/// work — "queries will also allow inclusion of constraints involving
/// metadata about attributes, e.g., to search for attributes that represent
/// currency or dates" — which InsightQuery::required_tags implements.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kNumeric;
  std::vector<std::string> tags;

  bool HasTag(std::string_view tag) const {
    for (const std::string& existing : tags) {
      if (existing == tag) return true;
    }
    return false;
  }

  friend bool operator==(const ColumnSpec& a, const ColumnSpec& b) {
    return a.name == b.name && a.type == b.type && a.tags == b.tags;
  }
};

/// Ordered set of attribute columns with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  /// Appends a column spec. Fails with AlreadyExists on duplicate names.
  Status AddColumn(ColumnSpec spec);

  /// Monotonic mutation counter: bumped whenever the column set, any
  /// column's tags, or the table's row data change (DataTable::AppendRows
  /// funnels row appends through NoteDataMutation). Cached query results
  /// keyed on schema state (the QuerySession serving layer) compare versions
  /// to detect staleness. Not part of equality and not serialized.
  uint64_t version() const { return version_; }

  /// Records a data (row) mutation of the owning table. Appends change query
  /// results without changing the column set, so they flow into the same
  /// monotonic counter — epoch-keyed caches invalidate with no extra
  /// plumbing.
  void NoteDataMutation() { ++version_; }

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t index) const { return columns_[index]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// Index of the column with the given name, or nullopt.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Indices of all columns of the given type, in schema order.
  std::vector<size_t> ColumnsOfType(ColumnType type) const;

  /// Adds a semantic tag to the named column (idempotent). NotFound when the
  /// column does not exist.
  Status TagColumn(std::string_view name, std::string tag);

  /// Indices of all columns carrying the tag, in schema order.
  std::vector<size_t> ColumnsWithTag(std::string_view tag) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<ColumnSpec> columns_;
  uint64_t version_ = 0;
};

}  // namespace foresight

#endif  // FORESIGHT_DATA_SCHEMA_H_
