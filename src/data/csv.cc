#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "util/string_util.h"

namespace foresight {

namespace {

/// Splits CSV text into rows of fields, honoring RFC-4180 quoting.
StatusOr<std::vector<std::vector<std::string>>> Tokenize(std::string_view text,
                                                         char delimiter) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool row_had_content = false;
  size_t line = 1;

  auto end_field = [&] {
    row_had_content = row_had_content || field_started || !field.empty();
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    // Skip rows with no content at all (blank lines, trailing newline). A
    // lone quoted-empty field ("") counts as content: it is how the writer
    // encodes a null in a single-column table.
    if (row.size() > 1 || !row[0].empty() || row_had_content) {
      rows.push_back(std::move(row));
    }
    row.clear();
    row_had_content = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
      }
    } else if (c == '"') {
      if (field.empty() && !field_started) {
        in_quotes = true;
        field_started = true;
      } else {
        field += c;  // Interior quote in an unquoted field: keep literally.
      }
    } else if (c == delimiter) {
      end_field();
    } else if (c == '\n') {
      ++line;
      end_row();
    } else if (c == '\r') {
      // Swallow; handles \r\n and lone \r line endings.
      if (i + 1 >= text.size() || text[i + 1] != '\n') {
        end_row();
      }
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field (line " +
                              std::to_string(line) + ")");
  }
  if (!field.empty() || field_started || !row.empty()) end_row();
  return rows;
}

bool LooksLikeIntegerCodes(const std::vector<std::vector<std::string>>& rows,
                           size_t first_data_row, size_t col,
                           size_t max_cardinality) {
  std::set<int64_t> distinct;
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    const std::string& token = rows[r][col];
    if (IsMissingToken(token)) continue;
    std::optional<int64_t> value = ParseInt64(token);
    if (!value.has_value()) return false;
    distinct.insert(*value);
    if (distinct.size() > max_cardinality) return false;
  }
  return !distinct.empty();
}

}  // namespace

StatusOr<DataTable> CsvReader::ReadString(std::string_view text,
                                          const CsvOptions& options) {
  FORESIGHT_ASSIGN_OR_RETURN(auto rows, Tokenize(text, options.delimiter));
  if (rows.empty()) {
    return Status::InvalidArgument("CSV input contains no rows");
  }

  size_t num_cols = rows[0].size();
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != num_cols) {
      return Status::ParseError(
          "row " + std::to_string(r + 1) + " has " +
          std::to_string(rows[r].size()) + " fields, expected " +
          std::to_string(num_cols));
    }
  }

  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.has_header) {
    first_data_row = 1;
    for (size_t c = 0; c < num_cols; ++c) {
      std::string name(Trim(rows[0][c]));
      if (name.empty()) name = "c" + std::to_string(c);
      names.push_back(std::move(name));
    }
  } else {
    for (size_t c = 0; c < num_cols; ++c) names.push_back("c" + std::to_string(c));
  }
  if (first_data_row >= rows.size()) {
    return Status::InvalidArgument("CSV input contains a header but no data");
  }

  // Infer per-column types: numeric iff every non-missing token parses.
  std::vector<ColumnType> types(num_cols, ColumnType::kNumeric);
  for (size_t c = 0; c < num_cols; ++c) {
    bool all_numeric = true;
    bool any_value = false;
    for (size_t r = first_data_row; r < rows.size(); ++r) {
      const std::string& token = rows[r][c];
      if (IsMissingToken(token)) continue;
      any_value = true;
      if (!ParseDouble(token).has_value()) {
        all_numeric = false;
        break;
      }
    }
    if (!all_numeric || !any_value) {
      types[c] = ColumnType::kCategorical;
    } else if (options.integer_codes_as_categorical &&
               LooksLikeIntegerCodes(rows, first_data_row, c,
                                     options.max_integer_code_cardinality)) {
      types[c] = ColumnType::kCategorical;
    }
  }

  DataTable table;
  for (size_t c = 0; c < num_cols; ++c) {
    std::unique_ptr<Column> column;
    if (types[c] == ColumnType::kNumeric) {
      auto numeric = std::make_unique<NumericColumn>();
      for (size_t r = first_data_row; r < rows.size(); ++r) {
        const std::string& token = rows[r][c];
        if (IsMissingToken(token)) {
          numeric->AppendNull();
        } else {
          double value = *ParseDouble(token);
          if (std::isnan(value)) {
            numeric->AppendNull();
          } else {
            numeric->Append(value);
          }
        }
      }
      column = std::move(numeric);
    } else {
      auto categorical = std::make_unique<CategoricalColumn>();
      for (size_t r = first_data_row; r < rows.size(); ++r) {
        const std::string& token = rows[r][c];
        if (IsMissingToken(token)) {
          categorical->AppendNull();
        } else {
          categorical->Append(Trim(token));
        }
      }
      column = std::move(categorical);
    }
    FORESIGHT_RETURN_IF_ERROR(table.AddColumn(names[c], std::move(column)));
  }
  return table;
}

StatusOr<DataTable> CsvReader::ReadFile(const std::string& path,
                                        const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadString(buffer.str(), options);
}

namespace {

std::string QuoteIfNeeded(const std::string& field, char delimiter) {
  bool needs_quote = field.find(delimiter) != std::string::npos ||
                     field.find('"') != std::string::npos ||
                     field.find('\n') != std::string::npos ||
                     field.find('\r') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string CsvWriter::WriteString(const DataTable& table,
                                   const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      out += QuoteIfNeeded(table.column_name(c), options.delimiter);
    }
    out += '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += options.delimiter;
      const Column& col = table.column(c);
      if (!col.is_valid(r)) {
        // Empty field encodes null — except in a single-column table, where
        // an entirely empty line would be dropped as blank on re-read; a
        // quoted-empty field survives the round trip.
        if (table.num_columns() == 1) out += "\"\"";
        continue;
      }
      if (col.type() == ColumnType::kNumeric) {
        out += FormatDouble(col.AsNumeric().value(r), 17);
      } else {
        out += QuoteIfNeeded(col.AsCategorical().value(r), options.delimiter);
      }
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteFile(const DataTable& table, const std::string& path,
                            const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  out << WriteString(table, options);
  if (!out) {
    return Status::IOError("failed writing file: " + path);
  }
  return Status::OK();
}

}  // namespace foresight
