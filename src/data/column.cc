#include "data/column.h"

namespace foresight {

const NumericColumn& Column::AsNumeric() const {
  FORESIGHT_CHECK(type() == ColumnType::kNumeric);
  return static_cast<const NumericColumn&>(*this);
}

const CategoricalColumn& Column::AsCategorical() const {
  FORESIGHT_CHECK(type() == ColumnType::kCategorical);
  return static_cast<const CategoricalColumn&>(*this);
}

NumericColumn::NumericColumn(std::vector<double> values)
    : values_(std::move(values)) {
  valid_.assign(values_.size(), true);
  valid_count_ = values_.size();
}

std::vector<double> NumericColumn::ValidValues() const {
  std::vector<double> out;
  out.reserve(valid_count());
  for (size_t i = 0; i < size(); ++i) {
    if (is_valid(i)) out.push_back(values_[i]);
  }
  return out;
}

std::unique_ptr<Column> NumericColumn::Clone() const {
  auto copy = std::make_unique<NumericColumn>();
  copy->values_ = values_;
  copy->valid_ = valid_;
  copy->valid_count_ = valid_count_;
  return copy;
}

CategoricalColumn::CategoricalColumn(const std::vector<std::string>& values) {
  for (const std::string& v : values) Append(v);
}

void CategoricalColumn::Append(std::string_view value) {
  auto it = dictionary_index_.find(std::string(value));
  int32_t code;
  if (it == dictionary_index_.end()) {
    code = static_cast<int32_t>(dictionary_.size());
    dictionary_.emplace_back(value);
    dictionary_index_.emplace(dictionary_.back(), code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
  PushValid(true);
}

std::unique_ptr<Column> CategoricalColumn::Clone() const {
  auto copy = std::make_unique<CategoricalColumn>();
  copy->codes_ = codes_;
  copy->dictionary_ = dictionary_;
  copy->dictionary_index_ = dictionary_index_;
  copy->valid_ = valid_;
  copy->valid_count_ = valid_count_;
  return copy;
}

}  // namespace foresight
