#ifndef FORESIGHT_DATA_GENERATORS_H_
#define FORESIGHT_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "data/table.h"

namespace foresight {

/// Synthetic analogues of the paper's demo datasets (§4). The originals (OECD
/// wellbeing, Parkinson's PPMI, IMDB movies) are not redistributable, so these
/// generators reproduce each dataset's *shape*: dimensions, attribute types,
/// and — crucially — planted distributional structure with known ground truth
/// (strong/weak correlations, skewed marginals, heavy hitters, outliers,
/// cluster separation). Every generator is deterministic given its seed.

/// OECD-wellbeing analogue: 24 numeric indicators + 1 categorical (Region).
///
/// Planted facts mirror the §4.1 usage scenario exactly:
///  - `WorkingLongHours`  <->  `TimeDevotedToLeisure`: strong NEGATIVE
///    correlation (the scenario's first discovery).
///  - `TimeDevotedToLeisure` is approximately Normal.
///  - `SelfReportedHealth` is LEFT-skewed and uncorrelated with
///    `TimeDevotedToLeisure` (the scenario's surprise).
///  - `LifeSatisfaction`  <->  `SelfReportedHealth`: strong POSITIVE
///    correlation (the scenario's final discovery).
///  - An "income" block (4 indicators, pairwise rho ~ 0.7) and an "education"
///    block (3 indicators, pairwise rho ~ 0.55).
///  - `AirPollution` is heavy-tailed (lognormal); `LongTermUnemployment`
///    carries planted extreme outliers; remaining indicators are noise.
/// The paper's table is 35 rows x 25 attributes; pass a larger `n_rows`
/// (e.g. 100000) to exercise the system at its intended scale.
DataTable MakeOecdLike(size_t n_rows = 35, uint64_t seed = 1);

/// Parkinson's-PPMI analogue: ~2K rows x 50 columns of clinical descriptors.
///
/// Planted structure: a correlated UPDRS symptom block, disease duration
/// correlated with total severity, right-skewed tremor scores, planted
/// measurement outliers, a 3-level `Cohort` categorical that cleanly segments
/// (updrs_total, motor_score), plus Zipf-frequency `Site` and balanced `Sex`.
DataTable MakeParkinsonLike(size_t n_rows = 2000, uint64_t seed = 2);

/// IMDB-movies analogue: ~5000 rows x 28 columns.
///
/// Planted structure: lognormal `budget` and `gross` with strong log-scale
/// correlation, `profit = gross - budget`, `imdb_score` mildly correlated
/// with critic reviews, heavy-tailed vote/like counts, Zipf-distributed
/// `genre`/`director`/`country` categoricals with dominant heavy hitters.
/// Supports the §4.2 questions (profitability correlates; critical response
/// vs. commercial success).
DataTable MakeImdbLike(size_t n_rows = 5000, uint64_t seed = 3);

/// Two standard-normal columns of length `n` with exact planted Pearson
/// correlation structure: y = rho*x + sqrt(1-rho^2)*eps. Used by the sketch
/// accuracy experiments (E1).
struct CorrelatedPair {
  std::vector<double> x;
  std::vector<double> y;
};
CorrelatedPair MakeGaussianPair(size_t n, double rho, uint64_t seed);

/// Table of `d` numeric columns in blocks of `block_size`; columns within a
/// block have pairwise correlation ~`in_block_rho` (one-factor model), columns
/// in different blocks are independent. Ground truth for heatmap/scaling
/// experiments (E3, E5).
DataTable MakeCorrelatedBlocks(size_t n_rows, size_t d, size_t block_size,
                               double in_block_rho, uint64_t seed);

/// Generic benchmark table: `d_num` numeric columns with varied distributions
/// (normal / lognormal / uniform / bimodal / correlated pairs) and `d_cat`
/// categorical columns with varied cardinality and Zipf exponents.
DataTable MakeBenchmarkTable(size_t n_rows, size_t d_num, size_t d_cat,
                             uint64_t seed);

}  // namespace foresight

#endif  // FORESIGHT_DATA_GENERATORS_H_
