#ifndef FORESIGHT_DATA_TABLE_H_
#define FORESIGHT_DATA_TABLE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/column.h"
#include "data/schema.h"
#include "util/status.h"

namespace foresight {

/// In-memory columnar table: the paper's input matrix `A (n×d)` where each
/// row is a data item and each column an attribute.
///
/// DataTable owns its columns. All columns have the same length. The table is
/// movable but not copyable (use `Clone()` for a deep copy).
class DataTable {
 public:
  DataTable() = default;

  DataTable(DataTable&&) = default;
  DataTable& operator=(DataTable&&) = default;
  DataTable(const DataTable&) = delete;
  DataTable& operator=(const DataTable&) = delete;

  /// Appends a column. Fails if the name already exists or if the length
  /// differs from existing columns.
  Status AddColumn(std::string name, std::unique_ptr<Column> column);

  /// Convenience wrappers for fully valid columns.
  Status AddNumericColumn(std::string name, std::vector<double> values);
  Status AddCategoricalColumn(std::string name,
                              const std::vector<std::string>& values);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Schema& schema() const { return schema_; }

  const Column& column(size_t index) const {
    FORESIGHT_CHECK(index < columns_.size());
    return *columns_[index];
  }
  const std::string& column_name(size_t index) const {
    return schema_.column(index).name;
  }

  /// Column lookup by name.
  StatusOr<size_t> ColumnIndex(std::string_view name) const;
  const Column* FindColumn(std::string_view name) const;

  /// Typed lookups; fail with InvalidArgument on a type mismatch.
  StatusOr<const NumericColumn*> NumericColumnByName(
      std::string_view name) const;
  StatusOr<const CategoricalColumn*> CategoricalColumnByName(
      std::string_view name) const;

  /// Adds a semantic metadata tag (e.g. "currency", "date") to a column;
  /// used by InsightQuery::required_tags (§2.1 metadata constraints).
  Status TagColumn(std::string_view name, std::string tag) {
    return schema_.TagColumn(name, std::move(tag));
  }
  std::vector<size_t> ColumnsWithTag(std::string_view tag) const {
    return schema_.ColumnsWithTag(tag);
  }

  /// Indices of numeric columns (the set `B`) and categorical columns (`C`).
  std::vector<size_t> NumericColumnIndices() const {
    return schema_.ColumnsOfType(ColumnType::kNumeric);
  }
  std::vector<size_t> CategoricalColumnIndices() const {
    return schema_.ColumnsOfType(ColumnType::kCategorical);
  }

  /// Appends every row of `delta` to this table. `delta` must have the same
  /// columns (names and types, in order); returns InvalidArgument otherwise
  /// and leaves the table untouched. Categorical values append by string, so
  /// the combined dictionary keeps first-occurrence order — identical to
  /// having ingested the concatenated rows in one pass. Bumps the schema's
  /// mutation counter (see Schema::NoteDataMutation) so epoch-keyed caches
  /// invalidate; an empty delta is a no-op and does not bump.
  Status AppendRows(const DataTable& delta);

  /// Deep copy.
  DataTable Clone() const;

  /// New table with only the selected columns (by index, in given order).
  StatusOr<DataTable> SelectColumns(const std::vector<size_t>& indices) const;

  /// New table with only the first `n` rows (or all rows if n >= num_rows).
  DataTable HeadRows(size_t n) const;

  /// Rough resident footprint of the column data (value buffers, validity
  /// masks, categorical dictionaries). Used by the dataset registry's byte
  /// budget alongside TableProfile::EstimateMemoryBytes.
  size_t EstimateMemoryBytes() const;

 private:
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace foresight

#endif  // FORESIGHT_DATA_TABLE_H_
