#include "data/schema.h"

#include "util/logging.h"

namespace foresight {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kNumeric:
      return "numeric";
    case ColumnType::kCategorical:
      return "categorical";
  }
  return "unknown";
}

Schema::Schema(std::vector<ColumnSpec> columns) {
  for (auto& spec : columns) {
    Status status = AddColumn(std::move(spec));
    FORESIGHT_CHECK_MSG(status.ok(), status.ToString().c_str());
  }
}

Status Schema::AddColumn(ColumnSpec spec) {
  if (FindColumn(spec.name).has_value()) {
    return Status::AlreadyExists("duplicate column name: " + spec.name);
  }
  columns_.push_back(std::move(spec));
  ++version_;
  return Status::OK();
}

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Status Schema::TagColumn(std::string_view name, std::string tag) {
  std::optional<size_t> index = FindColumn(name);
  if (!index.has_value()) {
    return Status::NotFound("no column named '" + std::string(name) + "'");
  }
  ColumnSpec& spec = columns_[*index];
  if (!spec.HasTag(tag)) {
    spec.tags.push_back(std::move(tag));
    ++version_;
  }
  return Status::OK();
}

std::vector<size_t> Schema::ColumnsWithTag(std::string_view tag) const {
  std::vector<size_t> result;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].HasTag(tag)) result.push_back(i);
  }
  return result;
}

std::vector<size_t> Schema::ColumnsOfType(ColumnType type) const {
  std::vector<size_t> result;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type == type) result.push_back(i);
  }
  return result;
}

}  // namespace foresight
