#include "data/table.h"

#include <utility>

namespace foresight {

Status DataTable::AddColumn(std::string name, std::unique_ptr<Column> column) {
  FORESIGHT_CHECK(column != nullptr);
  if (!columns_.empty() && column->size() != num_rows_) {
    return Status::InvalidArgument(
        "column '" + name + "' has " + std::to_string(column->size()) +
        " rows; table has " + std::to_string(num_rows_));
  }
  ColumnSpec spec;
  spec.name = std::move(name);
  spec.type = column->type();
  FORESIGHT_RETURN_IF_ERROR(schema_.AddColumn(std::move(spec)));
  if (columns_.empty()) num_rows_ = column->size();
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status DataTable::AddNumericColumn(std::string name,
                                   std::vector<double> values) {
  return AddColumn(std::move(name),
                   std::make_unique<NumericColumn>(std::move(values)));
}

Status DataTable::AddCategoricalColumn(std::string name,
                                       const std::vector<std::string>& values) {
  return AddColumn(std::move(name),
                   std::make_unique<CategoricalColumn>(values));
}

StatusOr<size_t> DataTable::ColumnIndex(std::string_view name) const {
  std::optional<size_t> index = schema_.FindColumn(name);
  if (!index.has_value()) {
    return Status::NotFound("no column named '" + std::string(name) + "'");
  }
  return *index;
}

const Column* DataTable::FindColumn(std::string_view name) const {
  std::optional<size_t> index = schema_.FindColumn(name);
  return index.has_value() ? columns_[*index].get() : nullptr;
}

StatusOr<const NumericColumn*> DataTable::NumericColumnByName(
    std::string_view name) const {
  FORESIGHT_ASSIGN_OR_RETURN(size_t index, ColumnIndex(name));
  const Column& col = column(index);
  if (col.type() != ColumnType::kNumeric) {
    return Status::InvalidArgument("column '" + std::string(name) +
                                   "' is not numeric");
  }
  return &col.AsNumeric();
}

StatusOr<const CategoricalColumn*> DataTable::CategoricalColumnByName(
    std::string_view name) const {
  FORESIGHT_ASSIGN_OR_RETURN(size_t index, ColumnIndex(name));
  const Column& col = column(index);
  if (col.type() != ColumnType::kCategorical) {
    return Status::InvalidArgument("column '" + std::string(name) +
                                   "' is not categorical");
  }
  return &col.AsCategorical();
}

Status DataTable::AppendRows(const DataTable& delta) {
  if (columns_.empty()) {
    return Status::InvalidArgument("cannot append rows to a table with no columns");
  }
  if (delta.num_columns() != num_columns()) {
    return Status::InvalidArgument(
        "append delta has " + std::to_string(delta.num_columns()) +
        " columns; table has " + std::to_string(num_columns()));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ColumnSpec& ours = schema_.column(c);
    const ColumnSpec& theirs = delta.schema().column(c);
    if (ours.name != theirs.name || ours.type != theirs.type) {
      return Status::InvalidArgument("append delta column " +
                                     std::to_string(c) + " ('" + theirs.name +
                                     "') does not match table column '" +
                                     ours.name + "'");
    }
  }
  if (delta.num_rows() == 0) return Status::OK();
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& src = *delta.columns_[c];
    if (src.type() == ColumnType::kNumeric) {
      auto& dst = static_cast<NumericColumn&>(*columns_[c]);
      const auto& numeric = src.AsNumeric();
      for (size_t i = 0; i < delta.num_rows(); ++i) {
        if (numeric.is_valid(i)) {
          dst.Append(numeric.value(i));
        } else {
          dst.AppendNull();
        }
      }
    } else {
      auto& dst = static_cast<CategoricalColumn&>(*columns_[c]);
      const auto& categorical = src.AsCategorical();
      for (size_t i = 0; i < delta.num_rows(); ++i) {
        if (categorical.is_valid(i)) {
          dst.Append(categorical.value(i));
        } else {
          dst.AppendNull();
        }
      }
    }
  }
  num_rows_ += delta.num_rows();
  schema_.NoteDataMutation();
  return Status::OK();
}

DataTable DataTable::Clone() const {
  DataTable copy;
  for (size_t i = 0; i < columns_.size(); ++i) {
    Status status = copy.AddColumn(schema_.column(i).name, columns_[i]->Clone());
    FORESIGHT_CHECK(status.ok());
  }
  return copy;
}

StatusOr<DataTable> DataTable::SelectColumns(
    const std::vector<size_t>& indices) const {
  DataTable result;
  for (size_t index : indices) {
    if (index >= columns_.size()) {
      return Status::OutOfRange("column index " + std::to_string(index) +
                                " out of range");
    }
    FORESIGHT_RETURN_IF_ERROR(
        result.AddColumn(schema_.column(index).name, columns_[index]->Clone()));
  }
  return result;
}

DataTable DataTable::HeadRows(size_t n) const {
  n = std::min(n, num_rows_);
  DataTable result;
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& col = *columns_[c];
    std::unique_ptr<Column> head;
    if (col.type() == ColumnType::kNumeric) {
      auto out = std::make_unique<NumericColumn>();
      const auto& numeric = col.AsNumeric();
      for (size_t i = 0; i < n; ++i) {
        if (numeric.is_valid(i)) {
          out->Append(numeric.value(i));
        } else {
          out->AppendNull();
        }
      }
      head = std::move(out);
    } else {
      auto out = std::make_unique<CategoricalColumn>();
      const auto& categorical = col.AsCategorical();
      for (size_t i = 0; i < n; ++i) {
        if (categorical.is_valid(i)) {
          out->Append(categorical.value(i));
        } else {
          out->AppendNull();
        }
      }
      head = std::move(out);
    }
    Status status = result.AddColumn(schema_.column(c).name, std::move(head));
    FORESIGHT_CHECK(status.ok());
  }
  return result;
}

size_t DataTable::EstimateMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& column : columns_) {
    bytes += (column->size() + 7) / 8;  // validity bitmask, rounded up
    if (column->type() == ColumnType::kNumeric) {
      bytes += column->AsNumeric().values().size() * sizeof(double);
    } else {
      const auto& categorical = column->AsCategorical();
      bytes += categorical.codes().size() * sizeof(int32_t);
      for (const std::string& entry : categorical.dictionary()) {
        bytes += entry.size() + sizeof(std::string);
      }
    }
  }
  return bytes;
}

}  // namespace foresight
