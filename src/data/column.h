#ifndef FORESIGHT_DATA_COLUMN_H_
#define FORESIGHT_DATA_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/schema.h"
#include "util/logging.h"

namespace foresight {

class NumericColumn;
class CategoricalColumn;

/// Abstract base for a single attribute column of the input matrix A (n×d).
///
/// Columns are append-only during construction and immutable afterwards from
/// the engine's point of view. Missing values are first-class: every column
/// carries a validity mask.
class Column {
 public:
  virtual ~Column() = default;

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  virtual ColumnType type() const = 0;

  /// Total number of rows, including nulls.
  size_t size() const { return valid_.size(); }

  /// True when row `i` holds a value (not missing).
  bool is_valid(size_t i) const {
    FORESIGHT_DCHECK(i < valid_.size());
    return valid_[i];
  }

  /// Number of non-null rows.
  size_t valid_count() const { return valid_count_; }

  /// Number of null rows.
  size_t null_count() const { return size() - valid_count_; }

  /// Deep copy.
  virtual std::unique_ptr<Column> Clone() const = 0;

  /// Downcasts; the caller must have checked `type()`.
  const NumericColumn& AsNumeric() const;
  const CategoricalColumn& AsCategorical() const;

 protected:
  Column() = default;
  // Subclasses are movable (e.g. when bulk-building tables); Column itself is
  // only ever held by pointer, so slicing is not a concern here.
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  void PushValid(bool valid) {
    valid_.push_back(valid);
    if (valid) ++valid_count_;
  }

  std::vector<bool> valid_;
  size_t valid_count_ = 0;
};

/// Column of real-valued attributes (the set `B` in the paper).
class NumericColumn final : public Column {
 public:
  NumericColumn() = default;

  /// Builds a fully valid column from raw values.
  explicit NumericColumn(std::vector<double> values);

  ColumnType type() const override { return ColumnType::kNumeric; }

  void Append(double value) {
    values_.push_back(value);
    PushValid(true);
  }

  void AppendNull() {
    values_.push_back(0.0);
    PushValid(false);
  }

  /// Value at row `i`; meaningful only when `is_valid(i)`.
  double value(size_t i) const {
    FORESIGHT_DCHECK(i < values_.size());
    return values_[i];
  }

  /// Raw value buffer (positions of nulls hold 0.0).
  const std::vector<double>& values() const { return values_; }

  /// Copies the non-null values, in row order.
  std::vector<double> ValidValues() const;

  std::unique_ptr<Column> Clone() const override;

 private:
  std::vector<double> values_;
};

/// Dictionary-encoded column of categorical attributes (the set `C`).
///
/// Each distinct string is assigned a dense non-negative code; per-row codes
/// are stored as int32. This makes frequency computations O(n) over small
/// integer arrays and keeps memory proportional to the dictionary size.
class CategoricalColumn final : public Column {
 public:
  CategoricalColumn() = default;

  /// Builds a fully valid column from string values.
  explicit CategoricalColumn(const std::vector<std::string>& values);

  ColumnType type() const override { return ColumnType::kCategorical; }

  void Append(std::string_view value);
  void AppendNull() {
    codes_.push_back(kNullCode);
    PushValid(false);
  }

  /// Dictionary code at row `i`; `kNullCode` when null.
  int32_t code(size_t i) const {
    FORESIGHT_DCHECK(i < codes_.size());
    return codes_[i];
  }

  /// String value at row `i`; meaningful only when `is_valid(i)`.
  const std::string& value(size_t i) const {
    FORESIGHT_DCHECK(is_valid(i));
    return dictionary_[static_cast<size_t>(codes_[i])];
  }

  /// Number of distinct non-null values seen.
  size_t cardinality() const { return dictionary_.size(); }

  /// Dictionary entry for a code.
  const std::string& dictionary_value(int32_t code) const {
    FORESIGHT_DCHECK(code >= 0 &&
                     static_cast<size_t>(code) < dictionary_.size());
    return dictionary_[static_cast<size_t>(code)];
  }

  const std::vector<int32_t>& codes() const { return codes_; }
  const std::vector<std::string>& dictionary() const { return dictionary_; }

  std::unique_ptr<Column> Clone() const override;

  static constexpr int32_t kNullCode = -1;

 private:
  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int32_t> dictionary_index_;
};

}  // namespace foresight

#endif  // FORESIGHT_DATA_COLUMN_H_
