#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/logging.h"
#include "util/random.h"

namespace foresight {

namespace {

/// Standard-normal column of length n.
std::vector<double> NormalColumn(size_t n, Rng& rng, double mean = 0.0,
                                 double stddev = 1.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal(mean, stddev);
  return v;
}

/// y = rho * x + sqrt(1 - rho^2) * eps, giving Pearson correlation ~rho.
std::vector<double> CorrelatedWith(const std::vector<double>& x, double rho,
                                   Rng& rng) {
  std::vector<double> y(x.size());
  double noise = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = rho * x[i] + noise * rng.Normal();
  }
  return y;
}

/// Rescales a standard-ish column to the given mean/stddev.
std::vector<double> Rescale(std::vector<double> v, double mean, double stddev) {
  for (double& x : v) x = mean + stddev * x;
  return v;
}

/// Zipf-frequency categorical values "prefix_0", "prefix_1", ...
std::vector<std::string> ZipfCategorical(size_t n, size_t cardinality, double s,
                                         const std::string& prefix, Rng& rng) {
  std::vector<std::string> v(n);
  for (std::string& x : v) {
    x = prefix + "_" + std::to_string(rng.Zipf(cardinality, s));
  }
  return v;
}

void MustAddNumeric(DataTable& table, const std::string& name,
                    std::vector<double> values) {
  Status status = table.AddNumericColumn(name, std::move(values));
  FORESIGHT_CHECK_MSG(status.ok(), status.ToString().c_str());
}

void MustAddCategorical(DataTable& table, const std::string& name,
                        const std::vector<std::string>& values) {
  Status status = table.AddCategoricalColumn(name, values);
  FORESIGHT_CHECK_MSG(status.ok(), status.ToString().c_str());
}

}  // namespace

DataTable MakeOecdLike(size_t n_rows, uint64_t seed) {
  Rng rng(seed);
  const size_t n = n_rows;
  DataTable table;

  // --- Scenario facts (§4.1) ---
  // Working long hours <-> time devoted to leisure: strong negative.
  std::vector<double> working_long_hours = NormalColumn(n, rng);
  std::vector<double> leisure = CorrelatedWith(working_long_hours, -0.85, rng);

  // Self-reported health: left-skewed, independent of leisure. Built from a
  // latent health factor plus left-skewed (negated exponential) noise.
  std::vector<double> health_latent = NormalColumn(n, rng);
  std::vector<double> self_reported_health(n);
  for (size_t i = 0; i < n; ++i) {
    // Exponential noise has mean 1; negating it makes the tail point left.
    self_reported_health[i] = health_latent[i] - 1.2 * (rng.Exponential(1.0) - 1.0);
  }
  // Life satisfaction: strongly tied to the same latent health factor.
  std::vector<double> life_satisfaction = CorrelatedWith(health_latent, 0.85, rng);

  // --- Income block: 4 indicators with pairwise rho ~ 0.7 (one factor). ---
  std::vector<double> income_factor = NormalColumn(n, rng);
  const double income_loading = std::sqrt(0.7);
  auto income_indicator = [&](double scale, double offset) {
    std::vector<double> v(n);
    double noise = std::sqrt(1.0 - 0.7);
    for (size_t i = 0; i < n; ++i) {
      v[i] = offset + scale * (income_loading * income_factor[i] +
                               noise * rng.Normal());
    }
    return v;
  };

  // --- Education block: 3 indicators with pairwise rho ~ 0.55. ---
  std::vector<double> education_factor = NormalColumn(n, rng);
  const double edu_loading = std::sqrt(0.55);
  auto education_indicator = [&](double scale, double offset) {
    std::vector<double> v(n);
    double noise = std::sqrt(1.0 - 0.55);
    for (size_t i = 0; i < n; ++i) {
      v[i] = offset + scale * (edu_loading * education_factor[i] +
                               noise * rng.Normal());
    }
    return v;
  };

  // --- Heavy-tailed and outlier-bearing indicators. ---
  std::vector<double> air_pollution(n);
  for (double& x : air_pollution) x = rng.LogNormal(2.5, 0.9);

  std::vector<double> long_term_unemployment(n);
  for (size_t i = 0; i < n; ++i) {
    long_term_unemployment[i] = rng.Normal(3.0, 1.0);
  }
  // Plant extreme outliers in ~2% of rows (at least one).
  size_t num_outliers = std::max<size_t>(1, n / 50);
  for (size_t i = 0; i < num_outliers; ++i) {
    size_t row = static_cast<size_t>(rng.UniformInt(n));
    long_term_unemployment[row] = rng.Uniform(12.0, 20.0);
  }

  MustAddNumeric(table, "WorkingLongHours",
                 Rescale(std::move(working_long_hours), 10.0, 4.0));
  MustAddNumeric(table, "TimeDevotedToLeisure",
                 Rescale(std::move(leisure), 14.5, 1.2));
  MustAddNumeric(table, "SelfReportedHealth",
                 Rescale(std::move(self_reported_health), 70.0, 10.0));
  MustAddNumeric(table, "LifeSatisfaction",
                 Rescale(std::move(life_satisfaction), 6.5, 0.8));
  MustAddNumeric(table, "HouseholdNetWealth", income_indicator(25000.0, 60000.0));
  MustAddNumeric(table, "HouseholdDisposableIncome",
                 income_indicator(8000.0, 28000.0));
  MustAddNumeric(table, "PersonalEarnings", income_indicator(12000.0, 40000.0));
  MustAddNumeric(table, "EmploymentRate", income_indicator(8.0, 68.0));
  MustAddNumeric(table, "EducationalAttainment", education_indicator(12.0, 75.0));
  MustAddNumeric(table, "YearsInEducation", education_indicator(2.0, 17.0));
  MustAddNumeric(table, "StudentSkills", education_indicator(35.0, 490.0));
  MustAddNumeric(table, "AirPollution", std::move(air_pollution));
  MustAddNumeric(table, "LongTermUnemployment",
                 std::move(long_term_unemployment));

  // --- Independent noise indicators to fill out the 24 numeric columns. ---
  const char* noise_names[] = {
      "QualityOfSupportNetwork", "WaterQuality",   "LifeExpectancy",
      "RoomsPerPerson",          "VoterTurnout",   "HousingExpenditure",
      "JobSecurity",             "AssaultRate",    "HomicideRate",
      "DwellingsWithFacilities", "ConsultationOnRules"};
  double noise_means[] = {88, 81, 79.5, 1.8, 68, 21, 7.2, 3.9, 1.1, 97, 7.3};
  double noise_sds[] = {6, 9, 2.5, 0.4, 12, 3, 2.1, 1.5, 0.9, 2.5, 1.8};
  for (size_t k = 0; k < std::size(noise_names); ++k) {
    MustAddNumeric(table, noise_names[k],
                   Rescale(NormalColumn(n, rng), noise_means[k], noise_sds[k]));
  }

  // 25th attribute: a categorical with heavy hitters (for RelFreq insights).
  MustAddCategorical(table, "Region", ZipfCategorical(n, 8, 1.3, "region", rng));

  // Semantic metadata for §2.1 metadata-constrained queries.
  for (const char* name :
       {"HouseholdNetWealth", "HouseholdDisposableIncome", "PersonalEarnings"}) {
    FORESIGHT_CHECK(table.TagColumn(name, "currency").ok());
  }
  for (const char* name : {"EmploymentRate", "LongTermUnemployment",
                           "EducationalAttainment", "VoterTurnout"}) {
    FORESIGHT_CHECK(table.TagColumn(name, "percentage").ok());
  }
  return table;
}

DataTable MakeParkinsonLike(size_t n_rows, uint64_t seed) {
  Rng rng(seed);
  const size_t n = n_rows;
  DataTable table;

  // Cohort drives a planted segmentation: PD patients score high, healthy
  // controls low, SWEDD in between, on the two main severity axes.
  std::vector<std::string> cohort(n);
  std::vector<double> severity_shift(n);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.UniformDouble();
    if (u < 0.6) {
      cohort[i] = "PD";
      severity_shift[i] = 2.4;
    } else if (u < 0.9) {
      cohort[i] = "HealthyControl";
      severity_shift[i] = -2.2;
    } else {
      cohort[i] = "SWEDD";
      severity_shift[i] = 0.2;
    }
  }

  // UPDRS symptom block: parts I..IV share a severity factor (rho ~ 0.65).
  std::vector<double> severity_factor(n);
  for (size_t i = 0; i < n; ++i) {
    severity_factor[i] = rng.Normal() + severity_shift[i];
  }
  auto updrs_part = [&](double scale, double offset) {
    std::vector<double> v(n);
    const double loading = std::sqrt(0.65);
    const double noise = std::sqrt(0.35);
    for (size_t i = 0; i < n; ++i) {
      v[i] = offset + scale * (loading * severity_factor[i] + noise * rng.Normal());
    }
    return v;
  };
  std::vector<double> updrs1 = updrs_part(2.5, 8.0);
  std::vector<double> updrs2 = updrs_part(4.0, 12.0);
  std::vector<double> updrs3 = updrs_part(8.0, 25.0);
  std::vector<double> updrs4 = updrs_part(1.5, 3.0);
  std::vector<double> updrs_total(n);
  for (size_t i = 0; i < n; ++i) {
    updrs_total[i] = updrs1[i] + updrs2[i] + updrs3[i] + updrs4[i];
  }

  // Disease duration correlates with total severity.
  std::vector<double> duration(n);
  for (size_t i = 0; i < n; ++i) {
    duration[i] = std::max(0.0, 0.12 * (updrs_total[i] - 30.0) +
                                    rng.Exponential(0.4));
  }

  // Right-skewed tremor score; DaTscan uptake with planted low outliers.
  std::vector<double> tremor(n);
  for (double& x : tremor) x = rng.LogNormal(0.5, 0.8);
  std::vector<double> datscan(n);
  for (size_t i = 0; i < n; ++i) datscan[i] = rng.Normal(2.1, 0.35);
  for (size_t i = 0; i < std::max<size_t>(1, n / 60); ++i) {
    datscan[rng.UniformInt(n)] = rng.Uniform(0.1, 0.5);
  }

  std::vector<double> age(n);
  for (double& x : age) x = rng.Normal(62.0, 9.5);

  MustAddCategorical(table, "Cohort", cohort);
  MustAddNumeric(table, "UPDRS_Part1", std::move(updrs1));
  MustAddNumeric(table, "UPDRS_Part2", std::move(updrs2));
  MustAddNumeric(table, "UPDRS_Part3", std::move(updrs3));
  MustAddNumeric(table, "UPDRS_Part4", std::move(updrs4));
  MustAddNumeric(table, "UPDRS_Total", std::move(updrs_total));
  MustAddNumeric(table, "DiseaseDurationYears", std::move(duration));
  MustAddNumeric(table, "TremorScore", std::move(tremor));
  MustAddNumeric(table, "DaTscanUptake", std::move(datscan));
  MustAddNumeric(table, "Age", std::move(age));

  std::vector<std::string> sex(n);
  for (std::string& s : sex) s = rng.UniformDouble() < 0.62 ? "M" : "F";
  MustAddCategorical(table, "Sex", sex);
  MustAddCategorical(table, "Site", ZipfCategorical(n, 24, 1.1, "site", rng));

  // Fill the remaining clinical descriptors: mildly correlated biomarker
  // block + independent labs, up to 50 columns total.
  std::vector<double> biomarker_factor = NormalColumn(n, rng);
  size_t col = table.num_columns();
  size_t biomarker_count = 12;
  for (size_t k = 0; k < biomarker_count; ++k, ++col) {
    std::vector<double> v(n);
    const double loading = std::sqrt(0.4);
    const double noise = std::sqrt(0.6);
    for (size_t i = 0; i < n; ++i) {
      v[i] = 50.0 + 12.0 * (loading * biomarker_factor[i] + noise * rng.Normal());
    }
    MustAddNumeric(table, "CSF_Biomarker_" + std::to_string(k), std::move(v));
  }
  for (size_t k = 0; table.num_columns() < 50; ++k) {
    const double dk = static_cast<double>(k);
    MustAddNumeric(table, "Lab_" + std::to_string(k),
                   Rescale(NormalColumn(n, rng), 100.0 + 7.0 * dk, 10.0 + dk));
  }
  return table;
}

DataTable MakeImdbLike(size_t n_rows, uint64_t seed) {
  Rng rng(seed);
  const size_t n = n_rows;
  DataTable table;

  // Budget and gross: lognormal with strong correlation on the log scale.
  std::vector<double> log_budget(n), budget(n), gross(n), profit(n);
  for (size_t i = 0; i < n; ++i) {
    log_budget[i] = rng.Normal(17.0, 1.2);  // exp ~ 24M median
    budget[i] = std::exp(log_budget[i]);
    double log_gross = 0.75 * (log_budget[i] - 17.0) + rng.Normal(17.2, 1.0);
    gross[i] = std::exp(log_gross);
    profit[i] = gross[i] - budget[i];
  }

  // Score mildly correlated with critic reviews; votes heavy-tailed and
  // correlated with gross (commercial success <-> audience size).
  std::vector<double> imdb_score(n), critic_reviews(n), user_votes(n);
  for (size_t i = 0; i < n; ++i) {
    double quality = rng.Normal();
    imdb_score[i] = std::clamp(6.4 + 1.0 * quality, 1.0, 9.8);
    critic_reviews[i] =
        std::max(1.0, 140.0 + 70.0 * (0.6 * quality + 0.8 * rng.Normal()));
    double log_votes = 0.55 * (std::log(gross[i]) - 17.2) + 0.4 * quality +
                       rng.Normal(10.5, 1.3);
    user_votes[i] = std::exp(log_votes);
  }

  std::vector<double> title_year(n), duration(n);
  for (size_t i = 0; i < n; ++i) {
    title_year[i] = std::floor(rng.Uniform(1960.0, 2017.0));
    duration[i] = std::max(60.0, rng.Normal(108.0, 20.0));
  }

  // Facebook-like counts: heavy-tailed.
  auto heavy_tailed = [&](double mu, double sigma) {
    std::vector<double> v(n);
    for (double& x : v) x = std::floor(rng.LogNormal(mu, sigma));
    return v;
  };

  MustAddNumeric(table, "budget", std::move(budget));
  MustAddNumeric(table, "gross", std::move(gross));
  MustAddNumeric(table, "profit", std::move(profit));
  MustAddNumeric(table, "imdb_score", std::move(imdb_score));
  MustAddNumeric(table, "num_critic_reviews", std::move(critic_reviews));
  MustAddNumeric(table, "num_user_votes", std::move(user_votes));
  MustAddNumeric(table, "title_year", std::move(title_year));
  MustAddNumeric(table, "duration", std::move(duration));
  MustAddNumeric(table, "movie_facebook_likes", heavy_tailed(6.0, 2.0));
  MustAddNumeric(table, "director_facebook_likes", heavy_tailed(5.0, 1.8));
  MustAddNumeric(table, "cast_facebook_likes", heavy_tailed(8.0, 1.5));
  MustAddNumeric(table, "actor_1_facebook_likes", heavy_tailed(7.0, 1.6));
  MustAddNumeric(table, "actor_2_facebook_likes", heavy_tailed(6.2, 1.6));
  MustAddNumeric(table, "actor_3_facebook_likes", heavy_tailed(5.4, 1.6));
  MustAddNumeric(table, "num_user_reviews", heavy_tailed(5.3, 1.2));
  MustAddNumeric(table, "aspect_ratio",
                 Rescale(NormalColumn(n, rng), 2.1, 0.25));
  MustAddNumeric(table, "facenumber_in_poster",
                 [&] {
                   std::vector<double> v(n);
                   for (double& x : v) x = std::floor(rng.Exponential(0.7));
                   return v;
                 }());

  // Categorical attributes with Zipf heavy hitters.
  MustAddCategorical(table, "genre", ZipfCategorical(n, 20, 1.2, "genre", rng));
  MustAddCategorical(table, "director_name",
                     ZipfCategorical(n, 1200, 1.05, "director", rng));
  MustAddCategorical(table, "actor_1_name",
                     ZipfCategorical(n, 1500, 1.05, "actor", rng));
  MustAddCategorical(table, "actor_2_name",
                     ZipfCategorical(n, 1800, 1.05, "actor2", rng));
  std::vector<std::string> content_rating(n);
  for (std::string& s : content_rating) {
    double u = rng.UniformDouble();
    s = u < 0.42 ? "R" : u < 0.75 ? "PG-13" : u < 0.9 ? "PG" : u < 0.96 ? "G"
                                                                        : "NC-17";
  }
  MustAddCategorical(table, "content_rating", content_rating);
  std::vector<std::string> country(n);
  for (std::string& s : country) {
    double u = rng.UniformDouble();
    s = u < 0.72 ? "USA" : u < 0.82 ? "UK" : u < 0.87 ? "France"
        : u < 0.91 ? "Germany" : u < 0.94 ? "Canada" : "Other";
  }
  MustAddCategorical(table, "country", country);
  std::vector<std::string> language(n);
  for (std::string& s : language) {
    s = rng.UniformDouble() < 0.93 ? "English" : "Other";
  }
  MustAddCategorical(table, "language", language);
  MustAddCategorical(table, "color",
                     [&] {
                       std::vector<std::string> v(n);
                       for (std::string& s : v) {
                         s = rng.UniformDouble() < 0.96 ? "Color" : "BW";
                       }
                       return v;
                     }());
  MustAddCategorical(table, "plot_keyword_1",
                     ZipfCategorical(n, 400, 1.1, "kw", rng));
  MustAddCategorical(table, "production_company",
                     ZipfCategorical(n, 300, 1.15, "studio", rng));
  MustAddCategorical(table, "decade",
                     [&] {
                       std::vector<std::string> v(n);
                       for (size_t i = 0; i < n; ++i) {
                         int year = static_cast<int>(
                             table.column(6).AsNumeric().value(i));
                         v[i] = std::to_string((year / 10) * 10) + "s";
                       }
                       return v;
                     }());

  // Semantic metadata for §2.1 metadata-constrained queries.
  for (const char* name : {"budget", "gross", "profit"}) {
    FORESIGHT_CHECK(table.TagColumn(name, "currency").ok());
  }
  FORESIGHT_CHECK(table.TagColumn("title_year", "date").ok());
  return table;
}

CorrelatedPair MakeGaussianPair(size_t n, double rho, uint64_t seed) {
  Rng rng(seed);
  CorrelatedPair pair;
  pair.x = NormalColumn(n, rng);
  pair.y = CorrelatedWith(pair.x, rho, rng);
  return pair;
}

DataTable MakeCorrelatedBlocks(size_t n_rows, size_t d, size_t block_size,
                               double in_block_rho, uint64_t seed) {
  FORESIGHT_CHECK(block_size >= 1);
  Rng rng(seed);
  DataTable table;
  std::vector<double> factor;
  double loading = std::sqrt(std::max(0.0, in_block_rho));
  double noise = std::sqrt(std::max(0.0, 1.0 - in_block_rho));
  for (size_t c = 0; c < d; ++c) {
    if (c % block_size == 0) factor = NormalColumn(n_rows, rng);
    std::vector<double> v(n_rows);
    for (size_t i = 0; i < n_rows; ++i) {
      v[i] = loading * factor[i] + noise * rng.Normal();
    }
    MustAddNumeric(table, "attr_" + std::to_string(c), std::move(v));
  }
  return table;
}

DataTable MakeBenchmarkTable(size_t n_rows, size_t d_num, size_t d_cat,
                             uint64_t seed) {
  Rng rng(seed);
  DataTable table;
  std::vector<double> prev;  // Every 4th column correlates with the previous.
  for (size_t c = 0; c < d_num; ++c) {
    std::vector<double> v;
    switch (c % 5) {
      case 0:
        v = NormalColumn(n_rows, rng, 50.0, 10.0);
        break;
      case 1:
        v.resize(n_rows);
        for (double& x : v) x = rng.LogNormal(2.0, 1.0);
        break;
      case 2:
        v.resize(n_rows);
        for (double& x : v) x = rng.Uniform(0.0, 100.0);
        break;
      case 3: {
        // Bimodal: mixture of two well-separated normals.
        v.resize(n_rows);
        for (double& x : v) {
          x = rng.UniformDouble() < 0.5 ? rng.Normal(-4.0, 1.0)
                                        : rng.Normal(4.0, 1.0);
        }
        break;
      }
      case 4: {
        if (!prev.empty()) {
          v = CorrelatedWith(prev, 0.8, rng);
        } else {
          v = NormalColumn(n_rows, rng);
        }
        break;
      }
    }
    prev = v;
    MustAddNumeric(table, "num_" + std::to_string(c), std::move(v));
  }
  for (size_t c = 0; c < d_cat; ++c) {
    size_t cardinality = 4 + (c % 6) * 20;
    double s = 1.0 + 0.15 * static_cast<double>(c % 4);
    MustAddCategorical(table, "cat_" + std::to_string(c),
                       ZipfCategorical(n_rows, cardinality, s,
                                       "v" + std::to_string(c), rng));
  }
  return table;
}

}  // namespace foresight
