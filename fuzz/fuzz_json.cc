// Fuzz harness for JsonValue::Parse (util/json.cc), the base of every
// untrusted-input surface in the tree: sketch snapshots, session state and
// chart specs all travel as JSON.
//
// Invariants checked beyond "does not crash":
//   - An accepted document is a serialization fixed point: Dump() re-parses,
//     and re-dumping yields byte-identical output (compact and pretty).
#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/logging.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  foresight::StatusOr<foresight::JsonValue> parsed =
      foresight::JsonValue::Parse(text);
  if (!parsed.ok()) return 0;

  std::string compact = parsed->Dump();
  foresight::StatusOr<foresight::JsonValue> reparsed =
      foresight::JsonValue::Parse(compact);
  FORESIGHT_CHECK(reparsed.ok());
  FORESIGHT_CHECK(reparsed->Dump() == compact);

  foresight::StatusOr<foresight::JsonValue> pretty =
      foresight::JsonValue::Parse(parsed->Dump(2));
  FORESIGHT_CHECK(pretty.ok());
  FORESIGHT_CHECK(pretty->Dump() == compact);
  return 0;
}
