// Fuzz harness for the /v1/append wire decoder (serve/wire.cc
// ParseAppendRowsV1) and the table growth it feeds (DataTable::AppendRows) —
// the JSON surface through which untrusted HTTP clients mutate a served
// table.
//
// Invariants checked beyond "does not crash":
//   - An accepted delta has exactly the schema of the target table and as
//     many rows as the request's `rows` array.
//   - AppendRows of an accepted delta always succeeds (the decoder's schema
//     guarantee is sufficient), grows the row count by exactly the delta,
//     keeps every column the same length, and bumps the schema version so
//     epoch-keyed caches invalidate.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/table.h"
#include "serve/wire.h"
#include "util/json.h"
#include "util/logging.h"

namespace {

/// A small fixed target table: two numeric columns (one with nulls) and a
/// categorical one, so every decode branch (number, string, null, type
/// mismatch) is reachable.
foresight::DataTable MakeTargetTable() {
  foresight::DataTable table;
  FORESIGHT_CHECK(
      table.AddNumericColumn("price", {1.0, 2.5, -3.0, 0.0}).ok());
  auto sparse = std::make_unique<foresight::NumericColumn>();
  sparse->Append(7.0);
  sparse->AppendNull();
  sparse->Append(-0.0);
  sparse->AppendNull();
  FORESIGHT_CHECK(table.AddColumn("sparse", std::move(sparse)).ok());
  FORESIGHT_CHECK(
      table.AddCategoricalColumn("region", {"eu", "us", "eu", "apac"}).ok());
  return table;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  foresight::StatusOr<foresight::JsonValue> json =
      foresight::JsonValue::Parse(text);
  if (!json.ok()) return 0;

  foresight::DataTable table = MakeTargetTable();
  foresight::StatusOr<foresight::DataTable> delta =
      foresight::ParseAppendRowsV1(*json, table, /*max_rows=*/64);
  if (!delta.ok()) return 0;

  FORESIGHT_CHECK(delta->num_columns() == table.num_columns());
  FORESIGHT_CHECK(delta->num_rows() >= 1);
  FORESIGHT_CHECK(delta->num_rows() <= 64);

  const size_t rows_before = table.num_rows();
  const uint64_t version_before = table.schema().version();
  foresight::Status appended = table.AppendRows(*delta);
  FORESIGHT_CHECK(appended.ok());
  FORESIGHT_CHECK(table.num_rows() == rows_before + delta->num_rows());
  FORESIGHT_CHECK(table.schema().version() != version_before);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    FORESIGHT_CHECK(table.column(c).size() == table.num_rows());
  }
  return 0;
}
