// Fuzz harness for CsvReader::ReadString (data/csv.cc), the entry point for
// user-supplied datasets.
//
// The first input byte selects parser options (delimiter, header, integer
// coding) so one corpus covers the option space deterministically; the rest
// is the CSV text.
//
// Invariants checked beyond "does not crash":
//   - CsvWriter is CsvReader's inverse: a table that parsed must write out
//     and re-parse with the same shape (rows x columns).
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "data/csv.h"
#include "util/logging.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  foresight::CsvOptions options;
  if (size > 0) {
    static constexpr char kDelimiters[] = {',', ';', '\t', '|'};
    options.delimiter = kDelimiters[data[0] & 3];
    options.has_header = (data[0] & 4) != 0;
    options.integer_codes_as_categorical = (data[0] & 8) != 0;
    options.max_integer_code_cardinality = 1 + (data[0] >> 4);
    ++data;
    --size;
  }
  std::string_view text(reinterpret_cast<const char*>(data), size);

  foresight::StatusOr<foresight::DataTable> table =
      foresight::CsvReader::ReadString(text, options);
  if (!table.ok()) return 0;

  std::string written = foresight::CsvWriter::WriteString(*table, options);
  foresight::StatusOr<foresight::DataTable> reread =
      foresight::CsvReader::ReadString(written, options);
  FORESIGHT_CHECK(reread.ok());
  FORESIGHT_CHECK(reread->num_rows() == table->num_rows());
  FORESIGHT_CHECK(reread->num_columns() == table->num_columns());
  return 0;
}
