// Fuzz harness for sketch/serialize.cc, the persistence format for
// preprocessed sketch state (preprocess once, serve many sessions — §3).
// A corrupt or hostile snapshot must deserialize to a Status error, never
// abort, over-read, or allocate unboundedly.
//
// Every FromJson deserializer is fed the parsed document. Accepted sketches
// are then (a) queried, so geometry lies that survive validation surface as
// ASan/UBSan findings here rather than at serving time, and (b) checked for
// the canonical-form fixed point: re-serializing an accepted sketch must
// deserialize again and re-serialize to byte-identical JSON.
#include <cstdint>
#include <string>
#include <string_view>

#include "sketch/serialize.h"
#include "util/json.h"
#include "util/logging.h"

namespace foresight {
namespace {

template <typename Sketch>
void CheckFixedPoint(const StatusOr<Sketch>& first,
                     JsonValue (*to_json)(const Sketch&),
                     StatusOr<Sketch> (*from_json)(const JsonValue&)) {
  if (!first.ok()) return;
  JsonValue canonical = to_json(*first);
  StatusOr<Sketch> second = from_json(canonical);
  FORESIGHT_CHECK(second.ok());
  FORESIGHT_CHECK(to_json(*second).Dump() == canonical.Dump());
}

void Exercise(const JsonValue& doc) {
  {
    StatusOr<RunningMoments> moments = MomentsFromJson(doc);
    if (moments.ok()) {
      (void)moments->variance();
      (void)moments->skewness();
      (void)moments->kurtosis();
    }
    CheckFixedPoint(moments, &MomentsToJson, &MomentsFromJson);
  }
  {
    StatusOr<KllSketch> kll = KllFromJson(doc);
    if (kll.ok()) {
      (void)kll->Quantile(0.5);
      (void)kll->Rank(0.0);
      (void)kll->RetainedItems();
    }
    CheckFixedPoint(kll, &KllToJson, &KllFromJson);
  }
  {
    StatusOr<ReservoirSample> sample = ReservoirFromJson(doc);
    if (sample.ok()) (void)sample->values();
    CheckFixedPoint(sample, &ReservoirToJson, &ReservoirFromJson);
  }
  {
    StatusOr<BitSignature> signature = SignatureFromJson(doc);
    if (signature.ok() && signature->num_bits() > 0) {
      (void)signature->bit(signature->num_bits() - 1);
      (void)BitSignature::HammingDistance(*signature, *signature);
    }
    CheckFixedPoint(signature, &SignatureToJson, &SignatureFromJson);
  }
  CheckFixedPoint(HyperplaneAccFromJson(doc), &HyperplaneAccToJson,
                  &HyperplaneAccFromJson);
  {
    StatusOr<ProjectionSketch> projection = ProjectionFromJson(doc);
    if (projection.ok()) (void)projection->EstimateSquaredNorm();
    CheckFixedPoint(projection, &ProjectionToJson, &ProjectionFromJson);
  }
  {
    StatusOr<SpaceSavingSketch> heavy = SpaceSavingFromJson(doc);
    if (heavy.ok()) {
      (void)heavy->TopK(4);
      (void)heavy->EstimateCount("x");
      (void)heavy->MaxError();
    }
    CheckFixedPoint(heavy, &SpaceSavingToJson, &SpaceSavingFromJson);
  }
  {
    StatusOr<CountMinSketch> countmin = CountMinFromJson(doc);
    if (countmin.ok()) {
      (void)countmin->EstimateCount("x");
      (void)countmin->ErrorBound();
    }
    CheckFixedPoint(countmin, &CountMinToJson, &CountMinFromJson);
  }
  {
    StatusOr<EntropySketch> entropy = EntropyFromJson(doc);
    if (entropy.ok()) (void)entropy->EstimateEntropy();
    CheckFixedPoint(entropy, &EntropyToJson, &EntropyFromJson);
  }
  {
    StatusOr<NumericColumnSketch> numeric = NumericSketchFromJson(doc);
    if (numeric.ok()) {
      // CHECK-guarded internally: deserialization must have verified the
      // projection lengths agree (see NumericSketchFromJson).
      (void)numeric->CenteredProjection();
    }
    CheckFixedPoint(numeric, &NumericSketchToJson, &NumericSketchFromJson);
  }
  CheckFixedPoint(CategoricalSketchFromJson(doc), &CategoricalSketchToJson,
                  &CategoricalSketchFromJson);
  CheckFixedPoint(SketchConfigFromJson(doc), &SketchConfigToJson,
                  &SketchConfigFromJson);
}

}  // namespace
}  // namespace foresight

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  foresight::StatusOr<foresight::JsonValue> doc =
      foresight::JsonValue::Parse(text);
  if (!doc.ok()) return 0;
  foresight::Exercise(*doc);
  return 0;
}
