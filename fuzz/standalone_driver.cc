// Standalone driver used when libFuzzer is unavailable (non-clang
// toolchains). Links against the same LLVMFuzzerTestOneInput entry point as
// the real fuzzer and provides two modes:
//
//   fuzz_xxx PATH...                 replay corpus files (or directories of
//                                    them) once each — a regression runner
//   fuzz_xxx -runs=N [-seed=S] PATH...
//                                    additionally run N deterministic
//                                    mutations derived from the corpus — a
//                                    self-contained mini-fuzzer, most useful
//                                    under ASan/UBSan builds
//
// Everything is deterministic: corpus files are visited in sorted order and
// mutations come from a SplitMix64 stream seeded by -seed (default 1), so a
// failing run can be reproduced exactly from its command line.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// SplitMix64. The driver must not use libc rand() (global state, platform-
// varying) — reproducibility is the whole point of this mode.
uint64_t NextRand(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

constexpr size_t kMaxInputBytes = 1 << 20;

void Mutate(std::vector<uint8_t>& data, uint64_t& state) {
  size_t edits = 1 + NextRand(state) % 4;
  for (size_t e = 0; e < edits; ++e) {
    switch (NextRand(state) % 6) {
      case 0:  // Flip one bit.
        if (!data.empty()) {
          data[NextRand(state) % data.size()] ^=
              static_cast<uint8_t>(1u << (NextRand(state) % 8));
        }
        break;
      case 1:  // Overwrite one byte.
        if (!data.empty()) {
          data[NextRand(state) % data.size()] =
              static_cast<uint8_t>(NextRand(state));
        }
        break;
      case 2:  // Insert one byte.
        if (data.size() < kMaxInputBytes) {
          data.insert(data.begin() +
                          static_cast<ptrdiff_t>(NextRand(state) %
                                                 (data.size() + 1)),
                      static_cast<uint8_t>(NextRand(state)));
        }
        break;
      case 3:  // Erase one byte.
        if (!data.empty()) {
          data.erase(data.begin() +
                     static_cast<ptrdiff_t>(NextRand(state) % data.size()));
        }
        break;
      case 4: {  // Duplicate a chunk (grows structure: nested arrays, rows).
        if (data.empty() || data.size() >= kMaxInputBytes) break;
        size_t start = NextRand(state) % data.size();
        size_t len = 1 + NextRand(state) % (data.size() - start);
        len = std::min(len, kMaxInputBytes - data.size());
        std::vector<uint8_t> chunk(
            data.begin() + static_cast<ptrdiff_t>(start),
            data.begin() + static_cast<ptrdiff_t>(start + len));
        size_t at = NextRand(state) % (data.size() + 1);
        data.insert(data.begin() + static_cast<ptrdiff_t>(at), chunk.begin(),
                    chunk.end());
        break;
      }
      case 5:  // Truncate.
        if (!data.empty()) data.resize(NextRand(state) % data.size());
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t seed = 1;
  std::vector<std::string> corpus_paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "-runs=", 6) == 0) {
      runs = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "-seed=", 6) == 0) {
      seed = std::strtoull(arg + 6, nullptr, 10);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::fprintf(stderr,
                   "usage: %s [-runs=N] [-seed=S] FILE_OR_DIR...\n", argv[0]);
      return 2;
    } else {
      corpus_paths.emplace_back(arg);
    }
  }

  // Expand directories; sort for run-to-run determinism.
  std::vector<std::string> files;
  for (const std::string& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& file : files) {
    corpus.push_back(ReadFileBytes(file));
    const std::vector<uint8_t>& bytes = corpus.back();
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("replayed %zu corpus file(s)\n", corpus.size());

  if (runs > 0 && corpus.empty()) {
    // Mutating from nothing still explores the short-input space.
    corpus.emplace_back();
  }
  uint64_t state = seed;
  for (uint64_t i = 0; i < runs; ++i) {
    std::vector<uint8_t> input = corpus[i % corpus.size()];
    Mutate(input, state);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    if ((i + 1) % 100000 == 0) {
      std::printf("  %llu/%llu mutation runs\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(runs));
    }
  }
  if (runs > 0) {
    std::printf("completed %llu mutation run(s) (seed=%llu)\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
