// Fuzz harness for binary profile snapshots (core/snapshot.h) and the FJB1
// binary JsonValue codec underneath them (util/json_binary.h). Snapshot
// files cross trust boundaries — they are read back from disk at cold start
// by every dataset the registry serves — so arbitrary bytes must come back
// as a Status error, never abort, over-read, or allocate from an
// attacker-chosen length field.
//
// Three layers are exercised per input:
//   1. Raw FJB1 decoding of the bytes; accepted documents must re-encode
//      and re-decode to the same logical value (canonical fixed point).
//   2. Snapshot inspection (prelude, checksums, header document), with and
//      without payload verification.
//   3. Full profile loading against a fixed table; accepted profiles must
//      re-encode to a snapshot that inspects, loads, and re-encodes
//      byte-identically.
//
// The seed corpus contains a real snapshot of the same table the harness
// loads against, so coverage reaches past the checksums into the profile
// validators instead of dying at the prelude.
#include <cstdint>
#include <string>
#include <string_view>

#include "core/profile.h"
#include "core/snapshot.h"
#include "data/generators.h"
#include "data/table.h"
#include "util/json.h"
#include "util/json_binary.h"
#include "util/logging.h"

namespace foresight {
namespace {

/// The table the seed-corpus snapshot was built from (see
/// fuzz/corpus/snapshot/). Must stay in sync with that file.
const DataTable& FuzzTable() {
  static const DataTable* table =
      new DataTable(MakeBenchmarkTable(48, 3, 1, 7));
  return *table;
}

void ExerciseJsonBinary(std::string_view bytes) {
  StatusOr<JsonValue> decoded = JsonBinaryDecode(bytes);
  if (!decoded.ok()) return;
  const std::string canonical = JsonBinaryEncode(*decoded);
  StatusOr<JsonValue> again = JsonBinaryDecode(canonical);
  FORESIGHT_CHECK(again.ok());
  FORESIGHT_CHECK(JsonBinaryEncode(*again) == canonical);
  FORESIGHT_CHECK(again->Dump() == decoded->Dump());
}

void ExerciseSnapshot(std::string_view bytes) {
  (void)InspectProfileSnapshot(bytes, /*verify_payload=*/false);
  (void)InspectProfileSnapshot(bytes, /*verify_payload=*/true);

  StatusOr<TableProfile> loaded = LoadProfileSnapshot(FuzzTable(), bytes);
  if (!loaded.ok()) return;

  // Accepted profiles must round-trip through the canonical encoding.
  const std::string canonical = EncodeProfileSnapshot(*loaded);
  StatusOr<SnapshotInfo> info = InspectProfileSnapshot(canonical);
  FORESIGHT_CHECK(info.ok());
  StatusOr<TableProfile> again = LoadProfileSnapshot(FuzzTable(), canonical);
  FORESIGHT_CHECK(again.ok());
  FORESIGHT_CHECK(EncodeProfileSnapshot(*again) == canonical);
}

}  // namespace
}  // namespace foresight

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  foresight::ExerciseJsonBinary(bytes);
  foresight::ExerciseSnapshot(bytes);
  return 0;
}
