// Fuzz harness for the HTTP/1.1 request parser (serve/http.cc), which reads
// raw bytes straight off accepted sockets.
//
// Invariants checked beyond "does not crash":
//   - kComplete never consumes more bytes than were offered, and always
//     consumes at least the header terminator.
//   - Errors always carry a mapped status code (4xx/5xx).
//   - A completed parse is prefix-stable: every proper prefix of the consumed
//     bytes must report kNeedMore, never an error or a bogus success (the
//     server re-parses the growing buffer on every read).
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/http.h"
#include "util/logging.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string buffer(reinterpret_cast<const char*>(data), size);
  foresight::HttpLimits limits;
  limits.max_header_bytes = 1024;
  limits.max_body_bytes = 4096;

  foresight::HttpRequest request;
  foresight::ParseResult result =
      foresight::ParseRequest(buffer, limits, &request);
  switch (result.state) {
    case foresight::ParseState::kNeedMore:
      break;
    case foresight::ParseState::kError:
      FORESIGHT_CHECK(result.error_status >= 400 &&
                      result.error_status <= 599);
      break;
    case foresight::ParseState::kComplete: {
      FORESIGHT_CHECK(result.consumed <= buffer.size());
      FORESIGHT_CHECK(result.consumed >= 4);  // At least "\r\n\r\n".
      // Stride keeps the sweep linear-ish for large inputs; the unit tests
      // cover the exhaustive every-byte version on fixed requests.
      const size_t stride = result.consumed > 512 ? result.consumed / 64 : 1;
      for (size_t cut = 0; cut < result.consumed; cut += stride) {
        foresight::HttpRequest partial;
        foresight::ParseResult prefix = foresight::ParseRequest(
            buffer.substr(0, cut), limits, &partial);
        FORESIGHT_CHECK(prefix.state == foresight::ParseState::kNeedMore);
      }
      break;
    }
  }
  return 0;
}
