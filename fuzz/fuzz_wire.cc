// Fuzz harness for the v1 wire codec (core/query.cc FromJson + serve/wire.cc
// ParseQueryBatchV1) — the JSON surface exposed to untrusted HTTP clients.
//
// Invariants checked beyond "does not crash":
//   - An accepted single query is a round-trip fixed point: ToJson() must
//     re-parse under the same strict decoder and re-encode byte-identically.
//   - An accepted batch re-parses query-by-query (every element passed the
//     strict decoder, so each must round-trip on its own).
#include <cstdint>
#include <string>
#include <string_view>

#include "core/query.h"
#include "serve/wire.h"
#include "util/json.h"
#include "util/logging.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  foresight::StatusOr<foresight::JsonValue> json =
      foresight::JsonValue::Parse(text);
  if (!json.ok()) return 0;

  foresight::StatusOr<foresight::InsightQuery> query =
      foresight::InsightQuery::FromJson(*json);
  if (query.ok()) {
    foresight::JsonValue encoded = query->ToJson();
    foresight::StatusOr<foresight::InsightQuery> again =
        foresight::InsightQuery::FromJson(encoded);
    FORESIGHT_CHECK(again.ok());
    FORESIGHT_CHECK(again->ToJson().Dump() == encoded.Dump());
  }

  foresight::StatusOr<std::vector<foresight::InsightQuery>> batch =
      foresight::ParseQueryBatchV1(*json, /*max_queries=*/64);
  if (batch.ok()) {
    for (const foresight::InsightQuery& q : *batch) {
      foresight::StatusOr<foresight::InsightQuery> again =
          foresight::InsightQuery::FromJson(q.ToJson());
      FORESIGHT_CHECK(again.ok());
    }
  }
  return 0;
}
